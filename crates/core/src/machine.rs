//! The Mostly No Machine: technique filters wired to a cache hierarchy.

use cache_sim::{
    Access, AccessFilter, AccessResult, BatchSummary, BypassSet, CacheEvent, EventKind, Hierarchy,
    ProbeOutcome, ProbeRecord, ReplayScratch, StructureId,
};

use crate::block::Granularity;
use crate::bloom::BloomFilter;
use crate::cmnm::Cmnm;
use crate::config::{MnmConfig, MnmPlacement, TechniqueConfig};
use crate::filter::MissFilter;
use crate::rmnm::Rmnm;
use crate::smnm::SmnmFilter;
use crate::stats::MnmStats;
use crate::tmnm::TmnmFilter;

/// One per-structure filter technique, dispatched statically.
///
/// The machine's hot query loop matches on this enum instead of calling
/// through a `Box<dyn MissFilter>` vtable, so each technique's
/// `is_definite_miss` inlines into [`Mnm::query`]. The [`MissFilter`]
/// trait still exists — and `FilterKind` implements it — because the
/// checker and fault-injection surface (`crates/check`) deliberately talk
/// to filters through the object-safe trait: the fault hooks must work
/// uniformly over any filter, including test doubles the checker defines
/// for itself, and none of that code is performance-sensitive.
#[derive(Debug, Clone)]
pub enum FilterKind {
    /// Sum-hash checkers (paper §3.2).
    Smnm(SmnmFilter),
    /// Saturating-counter tables (paper §3.3).
    Tmnm(TmnmFilter),
    /// Virtual-tag finder + counter table (paper §3.4).
    Cmnm(Cmnm),
    /// Counting Bloom filter (related work).
    Bloom(BloomFilter),
}

impl FilterKind {
    /// Instantiate the technique `config` describes.
    pub fn build(config: TechniqueConfig) -> Self {
        match config {
            TechniqueConfig::Smnm(c) => FilterKind::Smnm(SmnmFilter::new(c)),
            TechniqueConfig::Tmnm(c) => FilterKind::Tmnm(TmnmFilter::new(c)),
            TechniqueConfig::Cmnm(c) => FilterKind::Cmnm(Cmnm::new(c)),
            TechniqueConfig::Bloom(c) => FilterKind::Bloom(BloomFilter::new(c)),
        }
    }

    /// Statically dispatched [`MissFilter::is_definite_miss`] — the hot
    /// probe.
    #[inline]
    pub fn is_definite_miss(&self, block: u64) -> bool {
        match self {
            FilterKind::Smnm(f) => MissFilter::is_definite_miss(f, block),
            FilterKind::Tmnm(f) => MissFilter::is_definite_miss(f, block),
            FilterKind::Cmnm(f) => MissFilter::is_definite_miss(f, block),
            FilterKind::Bloom(f) => MissFilter::is_definite_miss(f, block),
        }
    }

    /// Statically dispatched [`MissFilter::on_place`].
    #[inline]
    pub fn on_place(&mut self, block: u64) {
        match self {
            FilterKind::Smnm(f) => MissFilter::on_place(f, block),
            FilterKind::Tmnm(f) => MissFilter::on_place(f, block),
            FilterKind::Cmnm(f) => MissFilter::on_place(f, block),
            FilterKind::Bloom(f) => MissFilter::on_place(f, block),
        }
    }

    /// Statically dispatched [`MissFilter::on_replace`].
    #[inline]
    pub fn on_replace(&mut self, block: u64) {
        match self {
            FilterKind::Smnm(f) => MissFilter::on_replace(f, block),
            FilterKind::Tmnm(f) => MissFilter::on_replace(f, block),
            FilterKind::Cmnm(f) => MissFilter::on_replace(f, block),
            FilterKind::Bloom(f) => MissFilter::on_replace(f, block),
        }
    }

    /// Statically dispatched [`MissFilter::on_invalidate`] — the
    /// `FilterInvalidate` path. Every family retires the block exactly as
    /// it would a replacement victim (for the set-only SMNM that is a
    /// deliberate no-op); soundness rests on the caller only reporting
    /// blocks that were actually removed.
    #[inline]
    pub fn on_invalidate(&mut self, block: u64) {
        match self {
            FilterKind::Smnm(f) => MissFilter::on_invalidate(f, block),
            FilterKind::Tmnm(f) => MissFilter::on_invalidate(f, block),
            FilterKind::Cmnm(f) => MissFilter::on_invalidate(f, block),
            FilterKind::Bloom(f) => MissFilter::on_invalidate(f, block),
        }
    }

    /// The wrapped filter as a [`MissFilter`] trait object (checker and
    /// fault-surface plumbing).
    pub fn as_miss_filter(&self) -> &dyn MissFilter {
        match self {
            FilterKind::Smnm(f) => f,
            FilterKind::Tmnm(f) => f,
            FilterKind::Cmnm(f) => f,
            FilterKind::Bloom(f) => f,
        }
    }

    /// Mutable form of [`FilterKind::as_miss_filter`].
    pub fn as_miss_filter_mut(&mut self) -> &mut dyn MissFilter {
        match self {
            FilterKind::Smnm(f) => f,
            FilterKind::Tmnm(f) => f,
            FilterKind::Cmnm(f) => f,
            FilterKind::Bloom(f) => f,
        }
    }
}

impl MissFilter for FilterKind {
    fn on_place(&mut self, block: u64) {
        FilterKind::on_place(self, block);
    }

    fn on_replace(&mut self, block: u64) {
        FilterKind::on_replace(self, block);
    }

    fn on_invalidate(&mut self, block: u64) {
        FilterKind::on_invalidate(self, block);
    }

    fn is_definite_miss(&self, block: u64) -> bool {
        FilterKind::is_definite_miss(self, block)
    }

    fn flush(&mut self) {
        self.as_miss_filter_mut().flush();
    }

    fn storage_bits(&self) -> u64 {
        self.as_miss_filter().storage_bits()
    }

    fn label(&self) -> &str {
        self.as_miss_filter().label()
    }

    fn reserve(&mut self, max_live_blocks: usize) {
        self.as_miss_filter_mut().reserve(max_live_blocks);
    }

    fn state_bits(&self) -> u64 {
        self.as_miss_filter().state_bits()
    }

    fn flip_state_bit(&mut self, bit: u64) -> bool {
        self.as_miss_filter_mut().flip_state_bit(bit)
    }

    fn state_bit_of(&self, block: u64) -> Option<u64> {
        self.as_miss_filter().state_bit_of(block)
    }

    fn occupancy(&self) -> crate::filter::FilterOccupancy {
        self.as_miss_filter().occupancy()
    }
}

#[derive(Debug)]
struct Slot {
    structure: StructureId,
    level: u8,
    name: String,
    filters: Vec<FilterKind>,
    /// MNM blocks currently resident in the guarded structure, maintained
    /// exactly from the event stream (placements add, replacements and
    /// invalidations retire; the hierarchy only reports actual state
    /// changes). Backs [`Mnm::occupancy`] with a block count independent
    /// of how many member filters a hybrid stacks on the slot.
    live_blocks: u64,
    /// Capacity of the guarded structure in MNM blocks.
    capacity_blocks: u64,
}

/// Storage cost of one MNM component, for the power model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentStorage {
    /// Configuration label (`"TMNM_12x3"`, `"RMNM_512_2"`, ...).
    pub label: String,
    /// Guarded structure name, or `"shared"` for the RMNM.
    pub structure: String,
    /// SRAM/flip-flop bits.
    pub bits: u64,
}

/// The Mostly No Machine (paper §2).
///
/// Owns one filter stack per guarded cache structure (every structure at
/// level 2 and beyond) plus the optional shared [`Rmnm`], performs the
/// per-access definite-miss query, consumes the hierarchy's
/// placement/replacement event stream, and tracks coverage.
#[derive(Debug)]
pub struct Mnm {
    config: MnmConfig,
    granularity: Granularity,
    slots: Vec<Slot>,
    /// Slot index per structure index; `None` for L1 structures.
    slot_of_structure: Vec<Option<usize>>,
    /// Slot indices along each path, in level order.
    instr_slots: Vec<usize>,
    data_slots: Vec<usize>,
    rmnm: Option<Rmnm>,
    stats: MnmStats,
    /// Reusable probe/event buffers for [`Mnm::run_access`]: the full
    /// per-access protocol allocates nothing in steady state.
    scratch: ReplayScratch,
}

impl Mnm {
    /// Build a machine for `hierarchy` from `config`.
    ///
    /// Every structure at level ≥ 2 receives fresh instances of the
    /// techniques assigned to its level; the paper never filters L1.
    pub fn new(hierarchy: &Hierarchy, config: MnmConfig) -> Self {
        let granularity = Granularity::from_bytes(hierarchy.mnm_granularity());
        let mut slots = Vec::new();
        let mut slot_of_structure = vec![None; hierarchy.structures().len()];

        for info in hierarchy.structures() {
            if info.level < 2 {
                continue;
            }
            // Capacity of the guarded structure in MNM blocks: bounds any
            // filter bookkeeping that is sized by residency.
            let max_live =
                (hierarchy.cache(info.id).config().size_bytes / granularity.bytes()) as usize;
            let filters: Vec<FilterKind> = config
                .techniques_for_level(info.level)
                .into_iter()
                .map(|t| {
                    let mut f = FilterKind::build(t);
                    f.reserve(max_live);
                    f
                })
                .collect();
            slot_of_structure[info.id.index()] = Some(slots.len());
            slots.push(Slot {
                structure: info.id,
                level: info.level,
                name: info.name.clone(),
                filters,
                live_blocks: 0,
                capacity_blocks: max_live as u64,
            });
        }

        let slot_path = |kind| {
            hierarchy
                .path(kind)
                .iter()
                .filter_map(|sid| slot_of_structure[sid.index()])
                .collect::<Vec<_>>()
        };
        let instr_slots = slot_path(cache_sim::AccessKind::InstrFetch);
        let data_slots = slot_path(cache_sim::AccessKind::Load);

        let rmnm = config.rmnm.map(|rc| Rmnm::new(rc, slots.len()));
        let stats = MnmStats::new(slots.len());

        Mnm {
            config,
            granularity,
            slots,
            slot_of_structure,
            instr_slots,
            data_slots,
            rmnm,
            stats,
            scratch: ReplayScratch::new(),
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MnmConfig {
        &self.config
    }

    /// The MNM block granularity (the L2 line size).
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Coverage/activity statistics.
    pub fn stats(&self) -> &MnmStats {
        &self.stats
    }

    /// Reset statistics, keeping filter state (post-warmup measurement).
    pub fn reset_stats(&mut self) {
        self.stats = MnmStats::new(self.slots.len());
    }

    /// Ask the machine which structures on this access's path will
    /// definitely miss. Sound: every flagged structure is guaranteed not to
    /// hold the block.
    pub fn query(&mut self, access: Access) -> BypassSet {
        let block = self.granularity.block_of(access.addr);
        let slots = if access.kind.is_instruction() { &self.instr_slots } else { &self.data_slots };
        let mut set = BypassSet::none();
        self.stats.accesses += 1;
        // One shared-RMNM tag search per access: its entry carries one miss
        // bit per slot, so the per-slot loop below tests bits of this mask
        // instead of re-running the set scan for every guarded structure.
        let rmnm_mask = match &self.rmnm {
            Some(r) => {
                self.stats.rmnm_queries += 1;
                r.miss_mask(block)
            }
            None => 0,
        };
        let mut any = false;
        for &si in slots {
            let slot = &self.slots[si];
            let st = &mut self.stats.slots[si];
            st.queries += 1;
            let miss =
                rmnm_mask >> si & 1 != 0 || slot.filters.iter().any(|f| f.is_definite_miss(block));
            if miss {
                set.insert(slot.structure);
                st.flagged += 1;
                any = true;
            }
        }
        if any {
            self.stats.accesses_with_flags += 1;
        }
        set
    }

    /// [`Mnm::query`] over a batch: one verdict per access, appended to
    /// `out` (cleared first, capacity retained across calls). Verdicts and
    /// statistics are identical to querying each access individually.
    pub fn query_many(&mut self, accesses: &[Access], out: &mut Vec<BypassSet>) {
        out.clear();
        out.reserve(accesses.len());
        for &access in accesses {
            out.push(self.query(access));
        }
    }

    /// Feed the hierarchy's placement/replacement events into the filters
    /// (the MNM bookkeeping of paper §2). Blocks from caches with lines
    /// larger than the MNM granularity expand into multiple updates
    /// (paper §3.1).
    pub fn observe_events(&mut self, events: &[CacheEvent]) {
        for ev in events {
            let Some(si) = self.slot_of_structure[ev.structure.index()] else {
                continue; // L1 structures are not tracked
            };
            for block in ev.sub_blocks(self.granularity.bytes()) {
                match ev.kind {
                    EventKind::Placed => {
                        for f in &mut self.slots[si].filters {
                            f.on_place(block);
                        }
                        if let Some(r) = &mut self.rmnm {
                            r.on_place(si, block);
                            self.stats.rmnm_updates += 1;
                        }
                        self.slots[si].live_blocks += 1;
                    }
                    EventKind::Replaced => {
                        for f in &mut self.slots[si].filters {
                            f.on_replace(block);
                        }
                        if let Some(r) = &mut self.rmnm {
                            r.on_replace(si, block);
                            self.stats.rmnm_updates += 1;
                        }
                        self.slots[si].live_blocks = self.slots[si].live_blocks.saturating_sub(1);
                    }
                    EventKind::Invalidated => {
                        for f in &mut self.slots[si].filters {
                            f.on_invalidate(block);
                        }
                        if let Some(r) = &mut self.rmnm {
                            r.on_invalidate(si, block);
                            self.stats.rmnm_updates += 1;
                        }
                        self.slots[si].live_blocks = self.slots[si].live_blocks.saturating_sub(1);
                        self.stats.slots[si].invalidations += 1;
                    }
                }
                self.stats.slots[si].updates += 1;
            }
        }
    }

    /// Fold an access's probe trail into the coverage statistics (paper
    /// §4.2): every probe at level ≥ 2 that missed is a bypassable miss;
    /// every bypassed probe is an identified one.
    pub fn note_probes(&mut self, probes: &[ProbeRecord]) {
        for p in probes {
            let Some(si) = self.slot_of_structure[p.structure.index()] else {
                continue;
            };
            let st = &mut self.stats.slots[si];
            match p.outcome {
                ProbeOutcome::Miss => st.bypassable_misses += 1,
                ProbeOutcome::Bypassed => {
                    st.bypassable_misses += 1;
                    st.identified_misses += 1;
                }
                ProbeOutcome::Hit => {}
            }
        }
    }

    /// Absorb one epoch resolution in a single batched call: the shared
    /// level's global event list (every core applies the identical list,
    /// keeping shared-slot filter state bit-identical everywhere) followed
    /// by this core's probe records for coverage accounting.
    ///
    /// This is the filter-side entry point of the pipelined sharded
    /// simulation's inbox application; the event/probe order matches the
    /// per-access protocol ([`Mnm::observe_events`] before
    /// [`Mnm::note_probes`]), so a batched refresh is indistinguishable
    /// from having observed each access individually.
    pub fn absorb_resolution(&mut self, events: &[CacheEvent], probes: &[ProbeRecord]) {
        self.observe_events(events);
        self.note_probes(probes);
    }

    /// Query, drive the access through the hierarchy with the resulting
    /// bypass set, feed the event stream back, and record coverage — the
    /// full per-access MNM protocol in one call. Reuses the machine's
    /// internal scratch buffers: zero heap allocations per access in
    /// steady state.
    pub fn run_access(&mut self, hierarchy: &mut Hierarchy, access: Access) -> AccessResult {
        let bypass = self.query(access);
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = hierarchy.access_with_events(access, &bypass, &mut scratch);
        self.observe_events(scratch.events());
        self.note_probes(scratch.probes());
        self.scratch = scratch;
        result
    }

    /// [`Mnm::run_access`] over a batch, folding the per-access outcomes
    /// into one [`BatchSummary`]. State evolution, verdicts, and statistics
    /// are identical to running each access individually; the batch form
    /// hoists the scratch-buffer swap out of the per-access loop and gives
    /// trace drivers a chunk-at-a-time entry point.
    pub fn run_many(&mut self, hierarchy: &mut Hierarchy, accesses: &[Access]) -> BatchSummary {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut summary = BatchSummary::default();
        for &access in accesses {
            let bypass = self.query(access);
            let result = hierarchy.access_with_events(access, &bypass, &mut scratch);
            self.observe_events(scratch.events());
            self.note_probes(scratch.probes());
            summary.absorb(result);
        }
        self.scratch = scratch;
        summary
    }

    /// The access latency including MNM placement effects: a serial MNM
    /// (paper Figure 1b) adds its delay once to every access that goes
    /// beyond L1; a parallel MNM (Figure 1a) hides its delay under the L1
    /// access; a distributed MNM pays the delay once per consulted level.
    pub fn adjusted_latency(&self, result: &AccessResult) -> u64 {
        match self.config.placement {
            MnmPlacement::Parallel => result.latency,
            MnmPlacement::Serial => {
                if result.l1_hit() {
                    result.latency
                } else {
                    result.latency + self.config.delay
                }
            }
            MnmPlacement::Distributed => {
                // Consulted at every non-L1 structure the request reached:
                // both the ones actually probed and the ones the MNM let it
                // skip (the skip decision itself is an MNM consultation).
                let consulted = u64::from(result.probed_beyond_l1 + result.bypassed);
                result.latency + self.config.delay * consulted
            }
        }
    }

    /// Storage cost of every component, for the power model.
    pub fn storage(&self) -> Vec<ComponentStorage> {
        let mut out = Vec::new();
        for slot in &self.slots {
            for f in &slot.filters {
                out.push(ComponentStorage {
                    label: f.label().to_owned(),
                    structure: slot.name.clone(),
                    bits: f.storage_bits(),
                });
            }
        }
        if let Some(r) = &self.rmnm {
            out.push(ComponentStorage {
                label: r.label(),
                structure: "shared".to_owned(),
                bits: r.storage_bits(),
            });
        }
        out
    }

    /// Total storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.storage().iter().map(|c| c.bits).sum()
    }

    /// Machine-level occupancy: MNM blocks currently resident in the
    /// guarded structures over their total block capacity, maintained
    /// exactly from the event stream.
    ///
    /// This counts *blocks*, not filter state units, so hybrids that stack
    /// several member filters on one slot report each resident block once.
    /// (The previous implementation summed
    /// [`MissFilter::occupancy`] across members, so an HMNM counted every
    /// block once per member filter — roughly doubling the reported load.
    /// Per-component state-unit occupancy is still available via
    /// [`Mnm::component_occupancy`].)
    pub fn occupancy(&self) -> crate::filter::FilterOccupancy {
        let mut occ = crate::filter::FilterOccupancy::default();
        for slot in &self.slots {
            occ.merge(crate::filter::FilterOccupancy {
                tracked: slot.live_blocks,
                capacity: slot.capacity_blocks,
            });
        }
        occ
    }

    /// Aggregate *state-unit* occupancy summed across every component
    /// filter (and the shared RMNM): armed counters / presence bits / valid
    /// entries over total state units. A hardware load factor, not a block
    /// count — blocks guarded by several member filters are counted once
    /// per member. Use [`Mnm::occupancy`] for a block-exact view.
    pub fn component_occupancy(&self) -> crate::filter::FilterOccupancy {
        let mut occ = crate::filter::FilterOccupancy::default();
        for slot in &self.slots {
            for f in &slot.filters {
                occ.merge(f.as_miss_filter().occupancy());
            }
        }
        if let Some(r) = &self.rmnm {
            occ.merge(r.occupancy());
        }
        occ
    }

    /// Names and levels of the guarded structures, in slot order.
    pub fn guarded_structures(&self) -> Vec<(String, u8)> {
        self.slots.iter().map(|s| (s.name.clone(), s.level)).collect()
    }

    /// The [`StructureId`] each slot guards, in slot order.
    pub fn slot_structures(&self) -> Vec<StructureId> {
        self.slots.iter().map(|s| s.structure).collect()
    }

    /// Fault-injection surface: `(slot, filter, state_bits)` for every
    /// component filter that exposes flippable state. The soundness
    /// checker uses this to aim [`Mnm::flip_filter_bit`]; nothing on the
    /// simulation path consults it.
    pub fn fault_surface(&self) -> Vec<(usize, usize, u64)> {
        let mut out = Vec::new();
        for (si, slot) in self.slots.iter().enumerate() {
            for (fi, f) in slot.filters.iter().enumerate() {
                let bits = f.state_bits();
                if bits > 0 {
                    out.push((si, fi, bits));
                }
            }
        }
        out
    }

    /// XOR one state bit of the component filter at `(slot, filter)`,
    /// emulating a soft error. Returns whether a bit was actually flipped.
    pub fn flip_filter_bit(&mut self, slot: usize, filter: usize, bit: u64) -> bool {
        self.slots
            .get_mut(slot)
            .and_then(|s| s.filters.get_mut(filter))
            .is_some_and(|f| f.flip_state_bit(bit))
    }

    /// The state bit of component `(slot, filter)` guarding the MNM block
    /// containing byte address `addr`, if the filter exposes one.
    pub fn state_bit_of(&self, slot: usize, filter: usize, addr: u64) -> Option<u64> {
        let block = self.granularity.block_of(addr);
        self.slots.get(slot)?.filters.get(filter)?.state_bit_of(block)
    }

    /// Reset all filter state and statistics.
    ///
    /// **Soundness caveat**: this clears only the MNM side. Cold SMNM
    /// checkers and zeroed TMNM/CMNM/Bloom counters read as "definite
    /// miss" for *every* block, so calling this while the guarded caches
    /// still hold data makes the very next query unsound. Unless the
    /// hierarchy is already empty, use [`Mnm::flush_system`], which clears
    /// both sides in the same step.
    pub fn flush(&mut self) {
        for slot in &mut self.slots {
            for f in &mut slot.filters {
                f.flush();
            }
            slot.live_blocks = 0;
        }
        if let Some(r) = &mut self.rmnm {
            r.flush();
        }
        self.reset_stats();
    }

    /// Flush the machine together with the hierarchy it guards — the only
    /// safe way to model a cache flush mid-trace.
    ///
    /// A flush must clear every attached filter (TMNM counters, CMNM live
    /// set, the shared RMNM table, SMNM checkers) *and* the caches in the
    /// same step: flushing the caches alone leaves filters conservatively
    /// stale (sound but lossy), while flushing the filters alone flags
    /// still-resident blocks (unsound). The differential checker in
    /// `crates/check` replays flush-heavy traces through this entry point
    /// to enforce the invariant.
    pub fn flush_system(&mut self, hierarchy: &mut Hierarchy) {
        hierarchy.flush();
        self.flush();
    }
}

/// The MNM plugs directly into [`cache_sim::ReplaySession`]: queries
/// produce the miss tags, and the session feeds events and probe trails
/// back into the filters — the same protocol as [`Mnm::run_access`].
impl AccessFilter for Mnm {
    fn query(&mut self, _hierarchy: &Hierarchy, access: Access) -> BypassSet {
        Mnm::query(self, access)
    }

    fn observe_events(&mut self, _hierarchy: &Hierarchy, events: &[CacheEvent]) {
        Mnm::observe_events(self, events);
    }

    fn note_probes(&mut self, _access: Access, probes: &[ProbeRecord]) {
        Mnm::note_probes(self, probes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{CacheConfig, HierarchyConfig, LevelConfig};

    fn tiny_hierarchy() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            levels: vec![
                LevelConfig::Split {
                    instr: CacheConfig::new("il1", 64, 1, 32, 2),
                    data: CacheConfig::new("dl1", 64, 1, 32, 2),
                },
                LevelConfig::Unified(CacheConfig::new("ul2", 256, 2, 32, 8)),
                LevelConfig::Unified(CacheConfig::new("ul3", 1024, 2, 64, 18)),
            ],
            memory_latency: 100,
            inclusive: false,
        })
    }

    #[test]
    fn guards_every_non_l1_structure() {
        let hier = tiny_hierarchy();
        let mnm = Mnm::new(&hier, MnmConfig::parse("TMNM_10x1").unwrap());
        let guarded = mnm.guarded_structures();
        assert_eq!(guarded, vec![("ul2".to_owned(), 2), ("ul3".to_owned(), 3)]);
    }

    /// Every filter family reports a meaningful dynamic occupancy: empty
    /// at build, strictly growing as distinct blocks are placed, and
    /// empty again after a flush.
    #[test]
    fn occupancy_tracks_placements_and_flushes() {
        for label in ["TMNM_12x1", "SMNM_13x2", "CMNM_8_12", "BLOOM_13x4", "RMNM_512_2", "HMNM4"] {
            let mut hier = tiny_hierarchy();
            let mut mnm = Mnm::new(&hier, MnmConfig::parse(label).unwrap());
            let empty = mnm.occupancy();
            assert!(empty.capacity > 0, "{label}: no occupancy surface");
            assert_eq!(empty.tracked, 0, "{label}: fresh filter not empty");
            assert_eq!(empty.ratio(), 0.0);

            for i in 0..64u64 {
                mnm.run_access(&mut hier, Access::load(0x1_0000 + i * 4096));
            }
            let warm = mnm.occupancy();
            assert!(warm.tracked > 0, "{label}: occupancy never rose");
            assert!(warm.ratio() > 0.0 && warm.ratio() <= 1.0);
            assert_eq!(warm.capacity, empty.capacity, "{label}: capacity drifted");

            mnm.flush_system(&mut hier);
            assert_eq!(mnm.occupancy().tracked, 0, "{label}: flush left state armed");
        }
    }

    /// Resident MNM sub-blocks per guarded structure, straight from the
    /// caches — the ground truth [`Mnm::occupancy`] must report.
    fn resident_mnm_blocks(hier: &Hierarchy, mnm: &Mnm) -> u64 {
        let gran = mnm.granularity().bytes();
        mnm.slot_structures()
            .iter()
            .map(|&sid| {
                let cache = hier.cache(sid);
                let per_line = (cache.config().block_bytes / gran).max(1);
                cache.occupancy() as u64 * per_line
            })
            .sum()
    }

    /// Satellite bugfix pin: `Mnm::occupancy` must count each resident
    /// block once, for every family. The pre-fix implementation summed
    /// per-component state-unit occupancies, so the hybrid (two member
    /// filters per slot) reported roughly twice the real load, and
    /// hash-shaped families (SMNM/TMNM/Bloom) under-reported whenever two
    /// blocks collided into one counter.
    #[test]
    fn occupancy_counts_each_resident_block_once_per_family() {
        for label in ["TMNM_12x1", "SMNM_13x2", "CMNM_8_12", "BLOOM_13x4", "RMNM_512_2", "HMNM4"] {
            let mut hier = tiny_hierarchy();
            let mut mnm = Mnm::new(&hier, MnmConfig::parse(label).unwrap());
            let mut x: u64 = 0xdead_beef;
            for _ in 0..4096 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                mnm.run_access(&mut hier, Access::load((x % 0x8000) & !0x3));
            }
            let occ = mnm.occupancy();
            let resident = resident_mnm_blocks(&hier, &mnm);
            assert_eq!(
                occ.tracked, resident,
                "{label}: occupancy must equal resident blocks (no double counting)"
            );
            assert!(occ.tracked <= occ.capacity, "{label}: load factor above 1");
        }
    }

    /// Satellite bugfix regression: after external invalidations (the
    /// coherence path), filter occupancy and verdicts must match a filter
    /// rebuilt from scratch against the surviving cache contents. Uses
    /// CMNM, whose live-set state is exact, so any cache/filter desync —
    /// e.g. removing blocks from the caches without the FilterInvalidate
    /// notification — shows up as a hard mismatch.
    #[test]
    fn invalidation_keeps_filters_synced_with_rebuilt_state() {
        let mut hier = tiny_hierarchy();
        let mut mnm = Mnm::new(&hier, MnmConfig::parse("CMNM_8_12").unwrap());
        let addrs: Vec<u64> = (0..64u64).map(|i| (i * 0x2b3 % 0x2000) & !0x1f).collect();
        for &a in &addrs {
            mnm.run_access(&mut hier, Access::load(a));
        }
        // Coherence traffic: invalidate every other touched block
        // everywhere, feeding the events to the filters.
        let mut events = Vec::new();
        for &a in addrs.iter().step_by(2) {
            hier.invalidate_block(a, &mut events);
        }
        mnm.observe_events(&events);

        // Rebuild a fresh machine against the surviving residency.
        let mut fresh = Mnm::new(&hier, MnmConfig::parse("CMNM_8_12").unwrap());
        let mut rebuilt = Vec::new();
        for info in hier.structures() {
            if info.level < 2 {
                continue;
            }
            for base in hier.cache(info.id).resident_blocks() {
                rebuilt.push(CacheEvent {
                    structure: info.id,
                    kind: EventKind::Placed,
                    block_base: base,
                    block_bytes: info.block_bytes,
                });
            }
        }
        fresh.observe_events(&rebuilt);

        assert_eq!(
            mnm.occupancy().tracked,
            fresh.occupancy().tracked,
            "occupancy diverged from a rebuilt filter after invalidation"
        );
        for probe in (0..0x2400u64).step_by(32) {
            assert_eq!(
                mnm.query(Access::load(probe)),
                fresh.query(Access::load(probe)),
                "verdict for {probe:#x} diverged from a rebuilt filter"
            );
        }
    }

    /// The RMNM learns from invalidations exactly as from replacements:
    /// an invalidated block is a definite miss until re-placed.
    #[test]
    fn rmnm_flags_invalidated_blocks() {
        let mut hier = tiny_hierarchy();
        let mut mnm = Mnm::new(&hier, MnmConfig::parse("RMNM_512_2").unwrap());
        mnm.run_access(&mut hier, Access::load(0x1000));
        assert!(mnm.query(Access::load(0x1000)).is_empty());
        let mut events = Vec::new();
        assert!(hier.invalidate_block(0x1000, &mut events) > 0);
        mnm.observe_events(&events);
        let bypass = mnm.query(Access::load(0x1000));
        let ul2 = hier.structures().iter().find(|s| s.name == "ul2").unwrap().id;
        let ul3 = hier.structures().iter().find(|s| s.name == "ul3").unwrap().id;
        assert!(bypass.contains(ul2) && bypass.contains(ul3));
        assert!(mnm.stats().slots.iter().map(|s| s.invalidations).sum::<u64>() > 0);
        // And the verdict is sound: the access runs with those bypasses.
        let r = mnm.run_access(&mut hier, Access::load(0x1000));
        assert_eq!(r.bypassed, 2);
    }

    /// Single-core regression for the inclusive back-invalidation path:
    /// filters must track back-invalidated blocks, so every verdict stays
    /// sound and occupancy stays block-exact under an aliasing trace that
    /// constantly back-invalidates L1/L2 copies.
    #[test]
    fn back_invalidation_keeps_filters_sound_and_exact() {
        let mut hier = Hierarchy::new(HierarchyConfig {
            levels: vec![
                LevelConfig::Split {
                    instr: CacheConfig::new("il1", 64, 1, 32, 2),
                    data: CacheConfig::new("dl1", 64, 1, 32, 2),
                },
                LevelConfig::Unified(CacheConfig::new("ul2", 256, 2, 32, 8)),
                // Small direct-mapped L3 forces frequent back-invalidations.
                LevelConfig::Unified(CacheConfig::new("ul3", 512, 1, 64, 18)),
            ],
            memory_latency: 100,
            inclusive: true,
        });
        let mut mnm = Mnm::new(&hier, MnmConfig::hmnm(1));
        let mut x: u64 = 0x5eed;
        for i in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = (x % 0x4000) & !0x3;
            let access = if i % 3 == 0 { Access::store(addr) } else { Access::load(addr) };
            // run_access verifies each bypass against actual contents via
            // the hierarchy's debug assertion.
            mnm.run_access(&mut hier, access);
        }
        let st = hier.stats();
        assert!(
            st.structures.iter().map(|s| s.invalidations).sum::<u64>() > 0,
            "trace never exercised back-invalidation"
        );
        assert_eq!(mnm.occupancy().tracked, resident_mnm_blocks(&hier, &mnm));
    }

    #[test]
    fn tmnm_flags_cold_misses_and_stays_sound() {
        let mut hier = tiny_hierarchy();
        let mut mnm = Mnm::new(&hier, MnmConfig::parse("TMNM_12x1").unwrap());
        // First touch: everything cold, filter flags both levels.
        let r = mnm.run_access(&mut hier, Access::load(0x1000));
        assert_eq!(r.bypassed, 2);
        assert_eq!(r.supply_level, 4);
        // Immediately after: resident everywhere, nothing flagged.
        let r = mnm.run_access(&mut hier, Access::load(0x1000));
        assert_eq!(r.bypassed, 0);
        assert_eq!(r.supply_level, 1);
    }

    #[test]
    fn coverage_is_one_for_pure_cold_misses_with_tmnm() {
        let mut hier = tiny_hierarchy();
        let mut mnm = Mnm::new(&hier, MnmConfig::parse("TMNM_12x1").unwrap());
        // Distinct 64-byte-aligned addresses spread over the 12-bit table:
        // all cold, all flagged.
        for i in 0..32u64 {
            mnm.run_access(&mut hier, Access::load(i * 64));
        }
        assert!(mnm.stats().coverage() > 0.9, "cold misses are TMNM's best case");
        assert_eq!(mnm.stats().bypassable_misses(), mnm.stats().identified_misses());
    }

    #[test]
    fn rmnm_covers_conflict_misses() {
        let mut hier = tiny_hierarchy();
        let mut mnm = Mnm::new(&hier, MnmConfig::parse("RMNM_128_1").unwrap());
        // Warm two conflicting blocks through ul2 (2-way, 4 sets of 32B:
        // set = block & 3). Blocks 0x0, 0x100, 0x200 share ul2 set 0.
        for addr in [0x0u64, 0x100, 0x200] {
            mnm.run_access(&mut hier, Access::load(addr));
        }
        // 0x0 was evicted from ul2 by the fill of 0x200. RMNM knows.
        let bypass = mnm.query(Access::load(0x0));
        let ul2 = hier.structures().iter().find(|s| s.name == "ul2").unwrap().id;
        assert!(bypass.contains(ul2), "RMNM must flag the replaced block");
        // And it is sound: running the access with the bypass works.
        let r = mnm.run_access(&mut hier, Access::load(0x0));
        assert!(r.bypassed >= 1);
    }

    #[test]
    fn adjusted_latency_depends_on_placement() {
        let mut hier = tiny_hierarchy();
        let mut parallel = Mnm::new(&hier, MnmConfig::parse("TMNM_10x1").unwrap());
        let r = parallel.run_access(&mut hier, Access::load(0x4000));
        assert_eq!(parallel.adjusted_latency(&r), r.latency);

        let serial_cfg =
            MnmConfig::parse("TMNM_10x1").unwrap().with_placement(MnmPlacement::Serial);
        let mut hier2 = tiny_hierarchy();
        let mut serial = Mnm::new(&hier2, serial_cfg);
        let r = serial.run_access(&mut hier2, Access::load(0x4000));
        assert_eq!(serial.adjusted_latency(&r), r.latency + 2);
        let r = serial.run_access(&mut hier2, Access::load(0x4000));
        assert!(r.l1_hit());
        assert_eq!(serial.adjusted_latency(&r), r.latency, "L1 hits skip the serial MNM");
    }

    #[test]
    fn large_lines_expand_to_multiple_updates() {
        let mut hier = tiny_hierarchy(); // ul3 has 64B lines, granularity 32B
        let mut mnm = Mnm::new(&hier, MnmConfig::parse("TMNM_12x1").unwrap());
        mnm.run_access(&mut hier, Access::load(0x2000));
        // After the fill, BOTH halves of ul3's 64-byte line are maybe-hits.
        let bypass = mnm.query(Access::load(0x2020));
        let ul3 = hier.structures().iter().find(|s| s.name == "ul3").unwrap().id;
        assert!(!bypass.contains(ul3), "sibling half of the ul3 line must not be flagged");
    }

    #[test]
    fn hmnm_storage_lists_all_components() {
        let hier = tiny_hierarchy();
        let mnm = Mnm::new(&hier, MnmConfig::hmnm(2));
        let storage = mnm.storage();
        // ul2 (level 2): SMNM+TMNM; ul3 (level 3): SMNM+TMNM; shared RMNM.
        assert_eq!(storage.len(), 5);
        assert!(storage.iter().any(|c| c.structure == "shared" && c.label.starts_with("RMNM")));
        assert!(mnm.storage_bits() > 0);
    }

    #[test]
    fn flush_resets_filters_and_stats() {
        let mut hier = tiny_hierarchy();
        let mut mnm = Mnm::new(&hier, MnmConfig::parse("TMNM_10x1").unwrap());
        mnm.run_access(&mut hier, Access::load(0x0));
        assert!(mnm.stats().accesses > 0);
        mnm.flush();
        assert_eq!(mnm.stats().accesses, 0);
        // Filters are cold again: a resident block would now be flagged,
        // so flush the hierarchy too to stay sound.
        hier.flush();
        let bypass = mnm.query(Access::load(0x0));
        assert_eq!(bypass.len(), 2);
    }

    #[test]
    fn flush_system_clears_both_sides_in_one_step() {
        // Drive a trace far enough to populate every filter and every
        // cache, flush mid-trace, then replay the same trace. The
        // hierarchy's debug assertion verifies each bypass against actual
        // contents, and we re-check the invariant explicitly so release
        // builds exercise it too.
        let trace: Vec<Access> = (0..256u64)
            .map(|i| {
                let addr = ((i * 0x2b3) % 0x4000) & !0x3;
                match i % 3 {
                    0 => Access::load(addr),
                    1 => Access::store(addr),
                    _ => Access::fetch(addr),
                }
            })
            .collect();
        for label in ["HMNM4", "TMNM_12x1", "CMNM_8_12", "RMNM_512_2", "SMNM_13x2"] {
            let mut hier = tiny_hierarchy();
            let mut mnm = Mnm::new(&hier, MnmConfig::parse(label).unwrap());
            for &a in &trace {
                mnm.run_access(&mut hier, a);
            }
            mnm.flush_system(&mut hier);
            assert_eq!(mnm.stats().accesses, 0, "{label}: filter stats must reset");
            assert_eq!(hier.stats().accesses, 0, "{label}: hierarchy stats must reset");
            for info in hier.structures() {
                assert_eq!(hier.cache(info.id).occupancy(), 0, "{label}: {} not empty", info.name);
            }
            // Replay: every flag the cold machine raises must be sound
            // against the (initially empty, then refilling) caches.
            // `query` is state-preserving on the filters, so peeking at the
            // verdict before `run_access` sees the same bypass set.
            for &a in &trace {
                let bypass = mnm.query(a);
                for info in hier.structures() {
                    if bypass.contains(info.id) {
                        assert!(
                            !hier.contains(info.id, a.addr),
                            "{label}: unsound flag on {} after flush_system",
                            info.name
                        );
                    }
                }
                mnm.run_access(&mut hier, a);
            }
        }
    }

    #[test]
    fn soundness_fuzz_under_heavy_aliasing() {
        // Tight address space forces constant conflict evictions at every
        // level; the debug_assert inside the hierarchy verifies every
        // bypass decision against actual cache contents.
        let mut hier = tiny_hierarchy();
        let mut mnm = Mnm::new(&hier, MnmConfig::hmnm(1));
        let mut x: u64 = 0x12345;
        for i in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = (x % 0x4000) & !0x3;
            let access = match i % 3 {
                0 => Access::load(addr),
                1 => Access::store(addr),
                _ => Access::fetch(addr),
            };
            mnm.run_access(&mut hier, access);
        }
        // Sanity: the machine actually did something.
        assert!(mnm.stats().bypassable_misses() > 0);
    }

    #[test]
    fn flipping_a_guarding_bit_makes_the_machine_lie() {
        let mut hier = tiny_hierarchy();
        let mut mnm = Mnm::new(&hier, MnmConfig::parse("TMNM_12x1").unwrap());
        mnm.run_access(&mut hier, Access::load(0x1000));
        // Resident everywhere: nothing flagged.
        assert!(mnm.query(Access::load(0x1000)).is_empty());

        let surface = mnm.fault_surface();
        assert_eq!(surface.len(), 2, "one TMNM per guarded level");
        assert!(surface.iter().all(|&(_, _, bits)| bits == 4096 * 3));
        assert_eq!(mnm.slot_structures().len(), 2);

        // Corrupt the ul2 TMNM's counter for the resident block: the
        // machine now (unsoundly) flags the guarded structure.
        let (slot, filter, _) = surface[0];
        let bit = mnm.state_bit_of(slot, filter, 0x1000).unwrap();
        assert!(mnm.flip_filter_bit(slot, filter, bit));
        let bypass = mnm.query(Access::load(0x1000));
        assert!(bypass.contains(mnm.slot_structures()[slot]), "corruption must surface as a lie");
        // Flip back: honest again.
        assert!(mnm.flip_filter_bit(slot, filter, bit));
        assert!(mnm.query(Access::load(0x1000)).is_empty());
        // Out-of-range coordinates are rejected, not panics.
        assert!(!mnm.flip_filter_bit(99, 0, 0));
        assert!(mnm.state_bit_of(99, 0, 0x1000).is_none());
    }
}
