//! HMNM — hybrid configurations (paper §3.5, Table 3).
//!
//! A hybrid MNM combines the techniques: a different SMNM+TMNM mix guards
//! levels 2–3, a CMNM+TMNM mix guards levels 4–5, and a shared RMNM covers
//! every level. All components are sound, so OR-ing their verdicts is sound
//! and coverage can only grow.
//!
//! Paper Table 3 (parameters recovered by cross-referencing the
//! configuration lists of Figures 10–13):
//!
//! | | HMNM1 | HMNM2 | HMNM3 | HMNM4 |
//! |---|---|---|---|---|
//! | Levels 2–3 | SMNM_10x2 + TMNM_10x1 | SMNM_13x2 + TMNM_10x1 | SMNM_15x2 + TMNM_10x1 | SMNM_20x3 + TMNM_10x3 |
//! | Levels 4–5 | CMNM_2_9 + TMNM_10x1 | CMNM_4_10 + TMNM_11x2 | CMNM_8_10 + TMNM_10x3 | CMNM_8_12 + TMNM_12x3 |
//! | All | RMNM_128_1 | RMNM_512_2 | RMNM_2048_4 | RMNM_4096_8 |

use crate::cmnm::CmnmConfig;
use crate::config::{Assignment, MnmConfig, MnmPlacement, TechniqueConfig, DEFAULT_MNM_DELAY};
use crate::rmnm::RmnmConfig;
use crate::smnm::SmnmConfig;
use crate::tmnm::TmnmConfig;

/// The component parameters of one HMNM column of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HmnmPreset {
    /// SMNM for levels 2–3: (sum_width, replication).
    pub low_smnm: (u32, u32),
    /// TMNM for levels 2–3: (bits, replication).
    pub low_tmnm: (u32, u32),
    /// CMNM for levels 4–5: (registers, table_bits).
    pub high_cmnm: (u32, u32),
    /// TMNM for levels 4–5: (bits, replication).
    pub high_tmnm: (u32, u32),
    /// Shared RMNM: (blocks, assoc).
    pub rmnm: (u32, u32),
}

/// Table 3, columns HMNM1..HMNM4.
pub const HMNM_PRESETS: [HmnmPreset; 4] = [
    HmnmPreset {
        low_smnm: (10, 2),
        low_tmnm: (10, 1),
        high_cmnm: (2, 9),
        high_tmnm: (10, 1),
        rmnm: (128, 1),
    },
    HmnmPreset {
        low_smnm: (13, 2),
        low_tmnm: (10, 1),
        high_cmnm: (4, 10),
        high_tmnm: (11, 2),
        rmnm: (512, 2),
    },
    HmnmPreset {
        low_smnm: (15, 2),
        low_tmnm: (10, 1),
        high_cmnm: (8, 10),
        high_tmnm: (10, 3),
        rmnm: (2048, 4),
    },
    HmnmPreset {
        low_smnm: (20, 3),
        low_tmnm: (10, 3),
        high_cmnm: (8, 12),
        high_tmnm: (12, 3),
        rmnm: (4096, 8),
    },
];

/// Build the full [`MnmConfig`] for `HMNM<n>`.
///
/// # Panics
///
/// Panics unless `n` is 1..=4.
pub fn hmnm_config(n: u8) -> MnmConfig {
    assert!((1..=4).contains(&n), "the paper defines HMNM1..HMNM4, got HMNM{n}");
    let p = HMNM_PRESETS[(n - 1) as usize];
    MnmConfig {
        name: format!("HMNM{n}"),
        assignments: vec![
            Assignment {
                levels: 2..=3,
                techniques: vec![
                    TechniqueConfig::Smnm(SmnmConfig::new(p.low_smnm.0, p.low_smnm.1)),
                    TechniqueConfig::Tmnm(TmnmConfig::new(p.low_tmnm.0, p.low_tmnm.1)),
                ],
            },
            Assignment {
                levels: 4..=u8::MAX,
                techniques: vec![
                    TechniqueConfig::Cmnm(CmnmConfig::new(p.high_cmnm.0, p.high_cmnm.1)),
                    TechniqueConfig::Tmnm(TmnmConfig::new(p.high_tmnm.0, p.high_tmnm.1)),
                ],
            },
        ],
        rmnm: Some(RmnmConfig::new(p.rmnm.0, p.rmnm.1)),
        delay: DEFAULT_MNM_DELAY,
        placement: MnmPlacement::Parallel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_grow_in_complexity() {
        for w in HMNM_PRESETS.windows(2) {
            assert!(w[1].rmnm.0 > w[0].rmnm.0);
            assert!(w[1].low_smnm.0 >= w[0].low_smnm.0);
        }
    }

    #[test]
    fn hmnm4_matches_table3() {
        let cfg = hmnm_config(4);
        let labels: Vec<String> =
            cfg.assignments.iter().flat_map(|a| a.techniques.iter().map(|t| t.label())).collect();
        assert_eq!(labels, ["SMNM_20x3", "TMNM_10x3", "CMNM_8_12", "TMNM_12x3"]);
        assert_eq!(cfg.rmnm.unwrap().label(), "RMNM_4096_8");
    }

    #[test]
    #[should_panic(expected = "HMNM1..HMNM4")]
    fn rejects_hmnm5() {
        hmnm_config(5);
    }
}
