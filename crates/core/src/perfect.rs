//! The perfect MNM oracle (paper §4.3).
//!
//! "The perfect MNM always knows where the data is and hence bypasses all
//! the caches that miss." It consumes no storage and no energy; it bounds
//! the achievable benefit of any realizable technique.

use cache_sim::{Access, BypassSet, Hierarchy};

/// Compute the bypass set a perfect MNM would produce for `access`:
/// every structure beyond L1 on the access path that does not hold the
/// block and sits before the supplying level.
///
/// Like the real techniques, the first level is never bypassed (the paper
/// does not predict L1 misses).
///
/// ```
/// use cache_sim::{Access, Hierarchy, HierarchyConfig};
/// use mnm_core::perfect_bypass;
///
/// let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
/// let access = Access::load(0x1000);
/// let bypass = perfect_bypass(&hier, access);
/// assert_eq!(bypass.len(), 4); // cold caches: L2..L5 all flagged
/// let r = hier.access(access, &bypass);
/// assert_eq!(r.misses, 1);     // only the un-bypassable L1 probe missed
/// ```
pub fn perfect_bypass(hierarchy: &Hierarchy, access: Access) -> BypassSet {
    hierarchy.dry_run_bypass(access)
}

/// [`perfect_bypass`] as an [`cache_sim::AccessFilter`], for driving a
/// [`cache_sim::ReplaySession`] with the oracle.
#[derive(Debug, Default, Clone, Copy)]
pub struct PerfectFilter;

impl cache_sim::AccessFilter for PerfectFilter {
    fn query(&mut self, hierarchy: &Hierarchy, access: Access) -> BypassSet {
        perfect_bypass(hierarchy, access)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::HierarchyConfig;

    #[test]
    fn perfect_bypass_is_exact() {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        // Warm one block.
        hier.access(Access::load(0x8000), &BypassSet::none());
        // Resident block: nothing to bypass.
        assert!(perfect_bypass(&hier, Access::load(0x8000)).is_empty());
        // Fresh block: all four outer levels flagged; the driven access
        // then misses only in L1.
        let access = Access::load(0x4_0000);
        let bypass = perfect_bypass(&hier, access);
        assert_eq!(bypass.len(), 4);
        let r = hier.access(access, &bypass);
        assert_eq!(r.misses, 1);
        assert_eq!(r.bypassed, 4);
        assert_eq!(r.latency, 2 + 320);
    }

    #[test]
    fn perfect_bypass_stops_at_the_supplier() {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        hier.access(Access::load(0x8000), &BypassSet::none());
        // Evict 0x8000 from the 4KB direct-mapped L1 (128 sets of 32B:
        // stride 4096 aliases).
        hier.access(Access::load(0x8000 + 4096), &BypassSet::none());
        // 0x8000 now hits in L2: the perfect MNM flags nothing.
        let bypass = perfect_bypass(&hier, Access::load(0x8000));
        assert!(bypass.is_empty());
    }
}
