//! Satellite regression: SIGTERM drain during an in-flight *resumable*
//! session. The signal is delivered for real via `raise(3)` so the
//! installed handler runs end to end. After the drain window the
//! server must evict the live session, exit its accept loop, and flush
//! a final metrics snapshot whose exactly-once ledger reconciles:
//! every frame that came in was either applied or replayed, never
//! both, never neither.
//!
//! This lives in its own test binary because the shutdown flag is
//! process-global: sharing a process with other server tests would
//! shut them down too.

use std::io::Write;
use std::time::Duration;

use mnm_serve::protocol::{encode_frame, encode_hello, encode_records_payload, FrameType};
use mnm_serve::server::{Endpoint, Server, ServerConfig};
use mnm_serve::signal;

fn records_frame(seq: u64, n: usize) -> Vec<u8> {
    use trace_synth::{Instr, InstrKind};
    let instrs: Vec<Instr> = (0..n)
        .map(|i| Instr {
            pc: 0x40_0000 + i as u64 * 4,
            kind: InstrKind::Load { addr: 0x1000_0000 + i as u64 * 64 },
            src1: 0,
            src2: 0,
        })
        .collect();
    let mut payload = Vec::new();
    encode_records_payload(seq, &instrs, &mut payload);
    let mut frame = Vec::new();
    encode_frame(FrameType::Records, &payload, &mut frame);
    frame
}

/// Read the v2 hello reply off a raw socket, returning (status, token).
fn read_hello(s: &mut std::net::TcpStream) -> (u8, u64) {
    use std::io::Read;
    let mut fixed = [0u8; 9];
    s.read_exact(&mut fixed).expect("hello reply");
    let status = fixed[6];
    let detail_len = u16::from_le_bytes([fixed[7], fixed[8]]) as usize;
    let mut detail = vec![0u8; detail_len];
    s.read_exact(&mut detail).expect("detail");
    let mut token = 0;
    if status == mnm_serve::protocol::STATUS_OK {
        let mut trailer = [0u8; 20];
        s.read_exact(&mut trailer).expect("trailer");
        token = u64::from_le_bytes(trailer[..8].try_into().unwrap());
    }
    (status, token)
}

fn read_frame(s: &mut std::net::TcpStream) -> (u8, Vec<u8>) {
    use std::io::Read;
    let mut header = [0u8; 9];
    s.read_exact(&mut header).expect("frame header");
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
    let mut payload = vec![0u8; len];
    s.read_exact(&mut payload).expect("frame payload");
    (header[0], payload)
}

fn scrape(page: &str, name: &str) -> u64 {
    mnm_serve::metrics::scrape_value(page, name)
        .unwrap_or_else(|| panic!("snapshot is missing {name}"))
}

#[test]
fn sigterm_drain_snapshot_reconciles_exactly_once_ledger() {
    let dir = std::env::temp_dir().join(format!("jsn-drain-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot = dir.join("final-metrics.txt");

    signal::reset();
    signal::install();

    let config = ServerConfig {
        drain: Duration::from_millis(400),
        snapshot_path: Some(snapshot.clone()),
        ..ServerConfig::default()
    };
    let server = Server::bind(Endpoint::Tcp("127.0.0.1:0".to_string()), config).expect("bind");
    let Endpoint::Tcp(addr) = server.local_endpoint() else { unreachable!() };
    let join = std::thread::spawn(move || server.run());

    // Phase 1: a session applies frame 1, then its connection dies —
    // the state parks for resume.
    let token = {
        let mut s = std::net::TcpStream::connect(addr.as_str()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(&encode_hello("baseline", 0)).unwrap();
        let (status, token) = read_hello(&mut s);
        assert_eq!(status, mnm_serve::protocol::STATUS_OK);
        s.write_all(&records_frame(1, 40)).unwrap();
        let (t, _) = read_frame(&mut s);
        assert_eq!(t, FrameType::Summary as u8);
        token
    };

    // Phase 2: resume, replay frame 1 (the server re-acks it without
    // re-applying), apply frame 2, and STAY CONNECTED mid-session.
    let mut s = std::net::TcpStream::connect(addr.as_str()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(&encode_hello("baseline", token)).unwrap();
    let (status, _) = read_hello(&mut s);
    assert_eq!(status, mnm_serve::protocol::STATUS_OK);
    s.write_all(&records_frame(1, 40)).unwrap();
    let (t, _) = read_frame(&mut s);
    assert_eq!(t, FrameType::Summary as u8);
    s.write_all(&records_frame(2, 25)).unwrap();
    let (t, _) = read_frame(&mut s);
    assert_eq!(t, FrameType::Summary as u8);

    // Phase 3: a real SIGTERM, handler and all. The session is still
    // in flight; the drain window expires and the server must evict
    // it, exit, and flush the snapshot.
    signal::raise(signal::SIGTERM);
    let (t, payload) = read_frame(&mut s);
    assert_eq!(t, FrameType::Error as u8, "drained session is told why");
    assert!(String::from_utf8_lossy(&payload).contains("shutting down"));
    drop(s);

    join.join().unwrap().expect("server run");
    signal::reset();

    // The snapshot, written through the atomic fsio writer, must
    // reconcile the exactly-once ledger: frames in = applied +
    // replayed, with the resume replay visible.
    let page = std::fs::read_to_string(&snapshot).expect("snapshot flushed on SIGTERM");
    assert_eq!(scrape(&page, "jsn_frames_applied_total"), 2, "frames 1 and 2, applied once each");
    assert_eq!(scrape(&page, "jsn_frames_replayed_total"), 1, "the resume replay of frame 1");
    assert_eq!(
        scrape(&page, "jsn_frames_in_total"),
        scrape(&page, "jsn_frames_applied_total") + scrape(&page, "jsn_frames_replayed_total"),
        "every frame in was applied or replayed — none lost, none doubled"
    );
    assert_eq!(scrape(&page, "jsn_sessions_resumed_total"), 1);
    assert_eq!(scrape(&page, "jsn_sessions_evicted_total"), 1, "the drained in-flight session");
    assert_eq!(scrape(&page, "jsn_queue_depth"), 0, "no frame left behind in a queue");
    let _ = std::fs::remove_dir_all(&dir);
}
