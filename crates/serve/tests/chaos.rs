//! End-to-end chaos soaks: `slam → chaos proxy → serve`, in process.
//!
//! Two properties are on trial:
//!
//! 1. **Exactly-once under faults** — whatever the proxy does to the
//!    bytes (corruption, duplicated writes, torn frames, connection
//!    resets, stalls), the slam run must complete with a served
//!    verdict histogram bit-identical to an offline replay of the same
//!    seeds: zero lost records, zero double-applied records.
//! 2. **Reproducibility** — the same chaos seed against the same
//!    workload fires the same fault sequence, byte for byte, so a
//!    failing soak can be replayed exactly.
//!
//! The `--verify` scrape goes directly to the server endpoint, not
//! through the proxy: the proof must not be garbled by the very faults
//! it is checking.

use mnm_serve::chaos::{ChaosOptions, ChaosPlan, ChaosProxy};
use mnm_serve::server::{Endpoint, Server, ServerConfig};
use mnm_serve::slam::{run_slam, SlamOptions, SlamReport};

/// Run one full soak: server + chaos proxy + slam, all in process.
/// Returns the slam report and the proxy's sorted fired-fault log.
fn soak(plan: &str, sessions: usize, records: u64, seed: u64) -> (SlamReport, String) {
    let server =
        Server::bind(Endpoint::Tcp("127.0.0.1:0".to_string()), ServerConfig::default()).unwrap();
    let server_endpoint = server.local_endpoint();
    let server_handle = server.handle();
    let server_join = std::thread::spawn(move || server.run());

    let proxy = ChaosProxy::bind(ChaosOptions {
        listen: Endpoint::Tcp("127.0.0.1:0".to_string()),
        upstream: server_endpoint.clone(),
        plan: ChaosPlan::parse(plan).expect("plan parses"),
        log_path: None,
    })
    .unwrap();
    let proxy_endpoint = proxy.local_endpoint();
    let proxy_handle = proxy.handle();
    let proxy_join = std::thread::spawn(move || proxy.run());

    let opts = SlamOptions {
        endpoint: proxy_endpoint,
        metrics: Some(server_endpoint), // verify must bypass the chaos
        sessions,
        records,
        frame_records: 256,
        config: "HMNM4".to_string(),
        seed,
        window: 2,
        retries: 20,
        backoff_ms: 2,
        verify: true,
    };
    let report = run_slam(&opts).expect("slam");

    proxy_handle.shutdown();
    proxy_join.join().unwrap().expect("proxy run");
    let log = proxy_handle.fired_log();
    server_handle.shutdown();
    server_join.join().unwrap().expect("server run");
    (report, log)
}

fn assert_soak_clean(report: &SlamReport, label: &str) {
    assert_eq!(report.sessions_failed, 0, "{label}: failures {:?}", report.failures);
    assert_eq!(report.dropped_frames(), 0, "{label}: dropped frames");
    let verify = report.verify.as_ref().expect("verify ran");
    assert!(verify.compared > 0, "{label}: nothing compared");
    assert!(
        verify.mismatches.is_empty(),
        "{label}: served verdicts diverged from offline replay: {:?}",
        verify.mismatches
    );
}

/// Non-terminal faults only (corruption, duplicated bytes, stalls):
/// the same seed must fire the identical fault sequence twice — and
/// both runs must still verify bit-identical to offline replay.
#[test]
fn same_seed_fires_the_same_fault_log_byte_for_byte() {
    let plan = "seed=3,corrupt=1/8,dup=1/16,delay=1/6:1";
    let (first, log_a) = soak(plan, 1, 2_000, 17);
    let (second, log_b) = soak(plan, 1, 2_000, 17);
    assert!(!log_a.is_empty(), "the corrupt-heavy plan fired nothing — inert soak");
    assert_eq!(log_a, log_b, "same seed, different fault sequence");
    assert_soak_clean(&first, "corrupt-heavy run 1");
    assert_soak_clean(&second, "corrupt-heavy run 2");
    // The corruption was not silently absorbed: the client had to
    // retry at least once.
    assert!(first.retries > 0, "faults fired but no retry was needed?");
}

/// Disconnect-heavy profile: torn frames and full connection resets.
/// Sessions must resume across the kills and still finish with the
/// offline-identical histogram.
#[test]
fn disconnect_heavy_soak_survives_with_exactly_once_verdicts() {
    let (report, log) = soak("seed=2,drop=1/8,tear=1/12", 4, 2_000, 29);
    assert!(log.contains("kind=drop") || log.contains("kind=tear"), "no disconnects fired:\n{log}");
    assert_soak_clean(&report, "disconnect-heavy");
    assert!(report.resumes > 0, "connections were killed but nothing resumed");
}

/// The mixed profile from CI: every fault kind at once.
#[test]
fn mixed_fault_soak_survives_with_exactly_once_verdicts() {
    let (report, log) =
        soak("seed=1,tear=1/24,corrupt=1/24,dup=1/32,delay=1/16:5,drop=1/64", 4, 2_000, 41);
    assert!(!log.is_empty(), "mixed plan fired nothing — inert soak");
    assert_soak_clean(&report, "mixed");
}

/// An empty plan relays clean: no faults, no retries, no resumes —
/// the proxy itself must not perturb the protocol.
#[test]
fn empty_plan_relays_clean() {
    let (report, log) = soak("seed=9", 2, 1_000, 5);
    assert!(log.is_empty(), "clean relay fired faults:\n{log}");
    assert_soak_clean(&report, "clean relay");
    assert_eq!(report.retries, 0);
    assert_eq!(report.resumes, 0);
}
