//! Integration tests for `jsn serve` protocol v2: CRC-framed wire
//! robustness (torn frames, bit corruption, oversize headers, version
//! mismatches in both directions), exactly-once session resume,
//! idle-deadline eviction, load shedding, and the end-to-end acceptance
//! run — 32 concurrent slam sessions with zero dropped frames and a
//! verdict histogram bit-identical to an offline replay.
//!
//! Every robustness case must end as a clean per-session outcome with
//! no leaked session slot: `sessions_active` returns to zero and the
//! gauge table empties.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use mnm_serve::protocol::{
    encode_frame, encode_hello, encode_records_payload, FrameType, SessionStatsWire, MAGIC,
    STATUS_BUSY, STATUS_OK, STATUS_REJECTED, VERSION,
};
use mnm_serve::server::{Endpoint, Server, ServerConfig, ServerHandle};
use mnm_serve::slam::{run_slam, scrape_metrics, SlamOptions};

/// Start a server on an ephemeral TCP port; returns its handle, the
/// endpoint, and the join handle of the accept loop.
fn start_server(
    config: ServerConfig,
) -> (ServerHandle, Endpoint, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(Endpoint::Tcp("127.0.0.1:0".to_string()), config).expect("bind");
    let endpoint = server.local_endpoint();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (handle, endpoint, join)
}

fn tcp_connect(endpoint: &Endpoint) -> TcpStream {
    let Endpoint::Tcp(addr) = endpoint else { panic!("expected tcp endpoint") };
    let s = TcpStream::connect(addr.as_str()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

/// Read a v2 hello reply; returns (status, detail, token, last_acked).
/// The OK trailer (token, acked, crc) is only present when status is
/// OK.
fn read_hello_reply(s: &mut TcpStream) -> (u8, String, u64, u64) {
    let mut fixed = [0u8; 7];
    s.read_exact(&mut fixed).expect("hello reply");
    assert_eq!(&fixed[..4], &MAGIC, "reply magic");
    assert_eq!(u16::from_le_bytes([fixed[4], fixed[5]]), VERSION, "reply version");
    let status = fixed[6];
    let mut len = [0u8; 2];
    s.read_exact(&mut len).expect("detail len");
    let mut detail = vec![0u8; u16::from_le_bytes(len) as usize];
    s.read_exact(&mut detail).expect("detail");
    let (mut token, mut acked) = (0u64, 0u64);
    if status == STATUS_OK {
        let mut trailer = [0u8; 20];
        s.read_exact(&mut trailer).expect("ok trailer");
        token = u64::from_le_bytes(trailer[..8].try_into().unwrap());
        acked = u64::from_le_bytes(trailer[8..16].try_into().unwrap());
        let mut whole = Vec::with_capacity(25);
        whole.extend_from_slice(&fixed);
        whole.extend_from_slice(&len);
        whole.extend_from_slice(&trailer[..16]);
        let crc = u32::from_le_bytes(trailer[16..].try_into().unwrap());
        assert_eq!(crc, trace_synth::crc32(&whole), "hello reply crc");
    }
    (status, String::from_utf8_lossy(&detail).to_string(), token, acked)
}

/// Read one CRC-framed server frame: (type byte, payload).
fn read_frame(s: &mut TcpStream) -> (u8, Vec<u8>) {
    let mut header = [0u8; 9];
    s.read_exact(&mut header).expect("frame header");
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
    let crc = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
    let mut payload = vec![0u8; len];
    s.read_exact(&mut payload).expect("frame payload");
    let mut c = trace_synth::Crc32::new();
    c.update(&header[..5]);
    c.update(&payload);
    assert_eq!(crc, c.finish(), "server frame crc");
    (header[0], payload)
}

fn test_instrs(n: usize) -> Vec<trace_synth::Instr> {
    use trace_synth::{Instr, InstrKind};
    (0..n)
        .map(|i| Instr {
            pc: 0x40_0000 + i as u64 * 4,
            kind: InstrKind::Load { addr: 0x1000_0000 + i as u64 * 64 },
            src1: 0,
            src2: 0,
        })
        .collect()
}

/// Encode one sequenced v2 records frame holding `n` loads.
fn records_frame(seq: u64, n: usize) -> Vec<u8> {
    let mut payload = Vec::new();
    encode_records_payload(seq, &test_instrs(n), &mut payload);
    let mut frame = Vec::new();
    encode_frame(FrameType::Records, &payload, &mut frame);
    frame
}

fn finish_frame() -> Vec<u8> {
    let mut frame = Vec::new();
    encode_frame(FrameType::Finish, &[], &mut frame);
    frame
}

/// A Summary payload is `seq u64 | accesses u64 | ...`.
fn summary_parts(payload: &[u8]) -> (u64, u64) {
    (
        u64::from_le_bytes(payload[..8].try_into().unwrap()),
        u64::from_le_bytes(payload[8..16].try_into().unwrap()),
    )
}

/// Wait for the server to settle at zero active sessions.
fn wait_idle(handle: &ServerHandle) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.registry().sessions_active.load(Ordering::SeqCst) > 0 {
        assert!(Instant::now() < deadline, "sessions_active never returned to zero: leaked slot");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(handle.registry().gauge_count(), 0, "leaked session gauge");
}

fn counter(handle: &ServerHandle, which: &str) -> u64 {
    let page = handle.registry().render();
    mnm_serve::metrics::scrape_value(&page, which).unwrap_or_else(|| panic!("no metric {which}"))
}

#[test]
fn torn_frame_header_parks_the_session_for_resume() {
    let (handle, endpoint, join) = start_server(ServerConfig::default());
    {
        let mut s = tcp_connect(&endpoint);
        s.write_all(&encode_hello("baseline", 0)).unwrap();
        assert_eq!(read_hello_reply(&mut s).0, STATUS_OK);
        // Three bytes of a nine-byte frame header, then vanish.
        s.write_all(&[1u8, 0xFF, 0x00]).unwrap();
    }
    wait_idle(&handle);
    // Wire damage is retryable: the session parks instead of failing.
    assert_eq!(counter(&handle, "jsn_sessions_parked"), 1);
    assert_eq!(counter(&handle, "jsn_sessions_failed_total"), 0);
    assert_eq!(counter(&handle, "jsn_sessions_accepted_total"), 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn short_reads_are_reassembled() {
    let (handle, endpoint, join) = start_server(ServerConfig::default());
    let mut s = tcp_connect(&endpoint);
    s.write_all(&encode_hello("TMNM_12x1", 0)).unwrap();
    assert_eq!(read_hello_reply(&mut s).0, STATUS_OK);

    // Dribble a whole records frame one byte at a time.
    let frame = records_frame(1, 10);
    for &b in &frame {
        s.write_all(&[b]).unwrap();
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let (t, payload) = read_frame(&mut s);
    assert_eq!(
        t,
        FrameType::Summary as u8,
        "dribbled frame still replays: {:?}",
        String::from_utf8_lossy(&payload)
    );
    let (seq, accesses) = summary_parts(&payload);
    assert_eq!(seq, 1, "summary echoes the frame seq");
    assert_eq!(accesses, 10);

    // Clean finish.
    s.write_all(&finish_frame()).unwrap();
    let (t, _) = read_frame(&mut s);
    assert_eq!(t, FrameType::Stats as u8);
    drop(s);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_completed_total"), 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn oversize_frame_header_is_rejected_without_allocation() {
    let (handle, endpoint, join) = start_server(ServerConfig::default());
    let mut s = tcp_connect(&endpoint);
    s.write_all(&encode_hello("baseline", 0)).unwrap();
    assert_eq!(read_hello_reply(&mut s).0, STATUS_OK);
    // Declare a 2 GiB payload (the CRC field never gets a say: the
    // bound check fires on the header alone).
    s.write_all(&[FrameType::Records as u8]).unwrap();
    s.write_all(&0x8000_0000u32.to_le_bytes()).unwrap();
    s.write_all(&[0u8; 4]).unwrap();
    let (t, payload) = read_frame(&mut s);
    assert_eq!(t, FrameType::Error as u8);
    let msg = String::from_utf8_lossy(&payload).to_string();
    assert!(msg.contains("exceeds"), "error names the bound: {msg}");
    drop(s);
    wait_idle(&handle);
    assert!(counter(&handle, "jsn_protocol_errors_total") >= 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Satellite (b), server side: a v1 hello against this v2 server gets
/// a clean versioned rejection — not a hang, not a decode failure —
/// because the server checks the version before reading any
/// version-specific hello field (the v1 hello has no resume token and
/// must not be over-read).
#[test]
fn v1_hello_against_v2_server_is_rejected_cleanly() {
    let (handle, endpoint, join) = start_server(ServerConfig::default());
    let mut s = tcp_connect(&endpoint);
    let mut hello = Vec::new();
    hello.extend_from_slice(&MAGIC);
    hello.extend_from_slice(&1u16.to_le_bytes()); // protocol v1
    hello.extend_from_slice(&0u16.to_le_bytes()); // empty config
    s.write_all(&hello).unwrap();
    // No token follows — a v1 client wouldn't send one. The reply must
    // still arrive promptly.
    let (status, detail, _, _) = read_hello_reply(&mut s);
    assert_eq!(status, STATUS_REJECTED);
    assert!(detail.contains("version 1") && detail.contains(&VERSION.to_string()), "{detail}");
    drop(s);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_rejected_total"), 1);
    assert_eq!(counter(&handle, "jsn_sessions_accepted_total"), 0);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Satellite (b), client side: a v2 slam client against a v1 server
/// reports the version mismatch by name. The fake v1 server answers
/// every hello with a v1-versioned OK reply prefix, which the client
/// must recognize via the version-invariant reply prefix.
#[test]
fn v2_client_against_v1_server_names_the_mismatch() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        // Serve a few hellos (the client retries), then quit.
        for stream in listener.incoming().take(3) {
            let Ok(mut s) = stream else { break };
            let mut sink = [0u8; 256];
            let _ = s.read(&mut sink);
            let mut reply = Vec::new();
            reply.extend_from_slice(&MAGIC);
            reply.extend_from_slice(&1u16.to_le_bytes()); // v1 speaks back
            reply.push(STATUS_OK);
            reply.extend_from_slice(&0u16.to_le_bytes());
            let _ = s.write_all(&reply);
        }
    });

    let opts = SlamOptions {
        endpoint: Endpoint::Tcp(addr.to_string()),
        sessions: 1,
        records: 100,
        frame_records: 50,
        retries: 2,
        backoff_ms: 1,
        ..SlamOptions::default()
    };
    let report = run_slam(&opts).expect("slam runs");
    assert_eq!(report.sessions_failed, 1);
    let failure = &report.failures[0];
    assert!(
        failure.contains("protocol v1") && failure.contains(&format!("v{VERSION}")),
        "failure names both versions: {failure}"
    );
    server.join().unwrap();
}

#[test]
fn unknown_preset_is_rejected_with_help() {
    let (handle, endpoint, join) = start_server(ServerConfig::default());
    let mut s = tcp_connect(&endpoint);
    s.write_all(&encode_hello("MNMX_99", 0)).unwrap();
    let (status, detail, _, _) = read_hello_reply(&mut s);
    assert_eq!(status, STATUS_REJECTED);
    assert!(detail.contains("MNMX_99"), "{detail}");
    drop(s);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_rejected_total"), 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// The resume round-trip, plus exactly-once replay accounting: a
/// session that dies mid-stream parks; reconnecting with its token
/// resumes at the server's acked frame; re-sending an already-applied
/// frame is re-acked from the summary ring without being re-fed.
#[test]
fn mid_session_disconnect_parks_and_resumes_exactly_once() {
    let (handle, endpoint, join) = start_server(ServerConfig::default());
    let token = {
        let mut s = tcp_connect(&endpoint);
        s.write_all(&encode_hello("HMNM4", 0)).unwrap();
        let (status, _, token, acked) = read_hello_reply(&mut s);
        assert_eq!(status, STATUS_OK);
        assert_ne!(token, 0, "server issues a resume token");
        assert_eq!(acked, 0);
        s.write_all(&records_frame(1, 100)).unwrap();
        let (t, payload) = read_frame(&mut s);
        assert_eq!(t, FrameType::Summary as u8);
        assert_eq!(summary_parts(&payload).1, 100);
        token
        // Drop without Finish.
    };
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_parked"), 1);
    assert_eq!(counter(&handle, "jsn_frames_in_total"), 1);

    // Reconnect with the token: the server reports frame 1 acked.
    let mut s = tcp_connect(&endpoint);
    s.write_all(&encode_hello("HMNM4", token)).unwrap();
    let (status, _, token2, acked) = read_hello_reply(&mut s);
    assert_eq!(status, STATUS_OK);
    assert_eq!(token2, token, "token survives the resume");
    assert_eq!(acked, 1, "server remembers the applied frame");

    // Replay frame 1 (as a client that missed the ack would): it must
    // be re-acked — summary seq echoes — without being re-fed.
    s.write_all(&records_frame(1, 100)).unwrap();
    let (t, payload) = read_frame(&mut s);
    assert_eq!(t, FrameType::Summary as u8);
    assert_eq!(summary_parts(&payload).0, 1);

    // New work, then finish.
    s.write_all(&records_frame(2, 50)).unwrap();
    let (t, payload) = read_frame(&mut s);
    assert_eq!(t, FrameType::Summary as u8);
    assert_eq!(summary_parts(&payload), (2, 50));
    s.write_all(&finish_frame()).unwrap();
    let (t, payload) = read_frame(&mut s);
    assert_eq!(t, FrameType::Stats as u8);
    let stats = SessionStatsWire::decode(&payload).expect("stats decode");
    assert_eq!(stats.frames, 2, "applied frames only — the replayed duplicate is not re-counted");
    assert_eq!(stats.accesses, 150, "100 + 50, exactly once");
    drop(s);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_resumed_total"), 1);
    assert_eq!(counter(&handle, "jsn_sessions_completed_total"), 1);
    assert_eq!(counter(&handle, "jsn_frames_replayed_total"), 1);
    assert_eq!(counter(&handle, "jsn_frames_applied_total"), 2);
    // Reconciliation invariant: nothing lost, nothing double-applied.
    assert_eq!(
        counter(&handle, "jsn_frames_in_total"),
        counter(&handle, "jsn_frames_applied_total")
            + counter(&handle, "jsn_frames_replayed_total")
    );
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// A frame whose bytes were damaged in flight fails its CRC: the
/// damage is counted, the session parks (wire damage is retryable, not
/// the client's fault), and a resume completes the session with
/// correct totals.
#[test]
fn crc_corruption_parks_and_resume_recovers() {
    let (handle, endpoint, join) = start_server(ServerConfig::default());
    let token = {
        let mut s = tcp_connect(&endpoint);
        s.write_all(&encode_hello("baseline", 0)).unwrap();
        let (status, _, token, _) = read_hello_reply(&mut s);
        assert_eq!(status, STATUS_OK);
        let mut frame = records_frame(1, 20);
        let last = frame.len() - 1;
        frame[last] ^= 0x40; // one flipped bit in the payload
        s.write_all(&frame).unwrap();
        let (t, payload) = read_frame(&mut s);
        assert_eq!(t, FrameType::Error as u8);
        assert!(String::from_utf8_lossy(&payload).contains("crc"));
        token
    };
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_crc_errors_total"), 1);
    assert_eq!(counter(&handle, "jsn_sessions_parked"), 1);
    assert_eq!(counter(&handle, "jsn_sessions_failed_total"), 0);

    let mut s = tcp_connect(&endpoint);
    s.write_all(&encode_hello("baseline", token)).unwrap();
    let (status, _, _, acked) = read_hello_reply(&mut s);
    assert_eq!(status, STATUS_OK);
    assert_eq!(acked, 0, "the corrupt frame was never applied");
    s.write_all(&records_frame(1, 20)).unwrap();
    let (t, _) = read_frame(&mut s);
    assert_eq!(t, FrameType::Summary as u8);
    s.write_all(&finish_frame()).unwrap();
    let (t, payload) = read_frame(&mut s);
    assert_eq!(t, FrameType::Stats as u8);
    assert_eq!(SessionStatsWire::decode(&payload).unwrap().accesses, 20);
    drop(s);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_completed_total"), 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn session_cap_rejects_with_busy_and_retry_hint() {
    let config = ServerConfig { max_sessions: 1, ..ServerConfig::default() };
    let (handle, endpoint, join) = start_server(config);

    let mut first = tcp_connect(&endpoint);
    first.write_all(&encode_hello("baseline", 0)).unwrap();
    assert_eq!(read_hello_reply(&mut first).0, STATUS_OK);

    let mut second = tcp_connect(&endpoint);
    second.write_all(&encode_hello("baseline", 0)).unwrap();
    let (status, detail, _, _) = read_hello_reply(&mut second);
    assert_eq!(status, STATUS_BUSY);
    assert!(detail.contains("1-session cap"), "{detail}");
    assert!(
        mnm_serve::protocol::parse_retry_after_ms(&detail).is_some(),
        "BUSY carries a retry-after hint: {detail}"
    );

    // The first session still works and finishes cleanly.
    first.write_all(&records_frame(1, 5)).unwrap();
    let (t, _) = read_frame(&mut first);
    assert_eq!(t, FrameType::Summary as u8);
    first.write_all(&finish_frame()).unwrap();
    let (t, _) = read_frame(&mut first);
    assert_eq!(t, FrameType::Stats as u8);
    drop(first);
    drop(second);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_rejected_total"), 1);
    assert_eq!(counter(&handle, "jsn_sessions_completed_total"), 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Load shedding: while the worker queue sits at or above the
/// watermark, new hellos get STATUS_BUSY with a retry-after hint and
/// the shed counter moves. (`Some(0)` sheds unconditionally.)
#[test]
fn shed_watermark_sheds_new_sessions_with_busy() {
    let config = ServerConfig { shed_watermark: Some(0), ..ServerConfig::default() };
    let (handle, endpoint, join) = start_server(config);
    let mut s = tcp_connect(&endpoint);
    s.write_all(&encode_hello("baseline", 0)).unwrap();
    let (status, detail, _, _) = read_hello_reply(&mut s);
    assert_eq!(status, STATUS_BUSY);
    assert!(detail.contains("shedding"), "{detail}");
    assert!(
        mnm_serve::protocol::parse_retry_after_ms(&detail).is_some(),
        "shed reply carries a retry-after hint: {detail}"
    );
    drop(s);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_shed_total"), 1);
    assert_eq!(counter(&handle, "jsn_sessions_accepted_total"), 0);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Satellite (c): a connected client that goes quiet past the idle
/// deadline is evicted — the slot frees, the eviction counter moves
/// exactly once, and the state does NOT park (an idle peer is
/// indistinguishable from a dead one).
#[test]
fn idle_client_is_evicted_exactly_once() {
    let config =
        ServerConfig { idle_timeout: Duration::from_millis(250), ..ServerConfig::default() };
    let (handle, endpoint, join) = start_server(config);
    let mut s = tcp_connect(&endpoint);
    s.write_all(&encode_hello("baseline", 0)).unwrap();
    assert_eq!(read_hello_reply(&mut s).0, STATUS_OK);
    // Say nothing. The server must hang up on its own.
    let (t, payload) = read_frame(&mut s);
    assert_eq!(t, FrameType::Error as u8);
    assert!(String::from_utf8_lossy(&payload).contains("idle"));
    drop(s);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_evicted_total"), 1, "evicted exactly once");
    assert_eq!(counter(&handle, "jsn_sessions_parked"), 0, "idle sessions do not park");
    assert_eq!(counter(&handle, "jsn_sessions_failed_total"), 0);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// A mid-payload stall (frame started, then silence) still trips the
/// stall deadline, distinct from the idle one.
#[test]
fn mid_frame_stall_is_evicted() {
    let config =
        ServerConfig { stall_timeout: Duration::from_millis(250), ..ServerConfig::default() };
    let (handle, endpoint, join) = start_server(config);
    let mut s = tcp_connect(&endpoint);
    s.write_all(&encode_hello("baseline", 0)).unwrap();
    assert_eq!(read_hello_reply(&mut s).0, STATUS_OK);
    // Start a frame header, then stall forever.
    s.write_all(&[FrameType::Records as u8, 0x10]).unwrap();
    let (t, payload) = read_frame(&mut s);
    assert_eq!(t, FrameType::Error as u8);
    assert!(String::from_utf8_lossy(&payload).contains("stalled"));
    drop(s);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_evicted_total"), 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn http_scrape_serves_metrics_and_404s_elsewhere() {
    let (handle, endpoint, join) = start_server(ServerConfig::default());
    let page = scrape_metrics(&endpoint).expect("scrape");
    assert!(page.contains("jsn_sessions_accepted_total 0"));
    assert!(page.contains("jsn_request_latency_us_p99"));
    for gauge in [
        "jsn_queue_depth",
        "jsn_sessions_shed_total",
        "jsn_sessions_resumed_total",
        "jsn_crc_errors_total",
        "jsn_frames_applied_total",
        "jsn_frames_replayed_total",
    ] {
        assert!(page.contains(gauge), "metrics page exposes {gauge}");
    }

    let mut s = tcp_connect(&endpoint);
    s.write_all(b"GET /nope HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    s.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 404"), "{response}");
    drop(s);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_scrapes_total"), 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// The acceptance run: ≥ 32 concurrent sessions, zero dropped frames,
/// scraped verdict histogram bit-identical to the offline replay.
#[test]
fn slam_32_sessions_verdicts_bit_identical_to_offline() {
    let (handle, endpoint, join) = start_server(ServerConfig::default());
    let opts = SlamOptions {
        endpoint: endpoint.clone(),
        sessions: 32,
        records: 4_000,
        frame_records: 512,
        config: "HMNM4".to_string(),
        seed: 7,
        window: 4,
        verify: true,
        ..SlamOptions::default()
    };
    let report = run_slam(&opts).expect("slam");
    assert_eq!(report.sessions_failed, 0, "failures: {:?}", report.failures);
    assert_eq!(report.sessions_ok, 32);
    assert_eq!(report.dropped_frames(), 0, "dropped frames");
    assert_eq!(report.records_sent, 32 * 4_000);
    let verify = report.verify.as_ref().expect("verify ran");
    assert!(verify.compared > 0);
    assert!(verify.mismatches.is_empty(), "verdict mismatch: {:?}", verify.mismatches);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_completed_total"), 32);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Unix-socket transport end to end, plus the shutdown snapshot flushed
/// through the atomic fsio writer.
#[test]
fn unix_socket_slam_and_shutdown_snapshot() {
    let dir = std::env::temp_dir().join(format!("jsn-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("jsn.sock");
    let snapshot = dir.join("metrics-final.txt");

    let config = ServerConfig { snapshot_path: Some(snapshot.clone()), ..ServerConfig::default() };
    let server = Server::bind(Endpoint::Unix(sock.clone()), config).expect("bind unix");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let opts = SlamOptions {
        endpoint: Endpoint::Unix(sock.clone()),
        sessions: 8,
        records: 2_000,
        frame_records: 256,
        config: "TMNM_12x1".to_string(),
        seed: 11,
        window: 2,
        verify: true,
        ..SlamOptions::default()
    };
    let report = run_slam(&opts).expect("slam over unix socket");
    assert_eq!(report.sessions_failed, 0, "failures: {:?}", report.failures);
    assert_eq!(report.dropped_frames(), 0);
    let verify = report.verify.as_ref().expect("verify ran");
    assert!(verify.mismatches.is_empty(), "verdict mismatch: {:?}", verify.mismatches);

    handle.shutdown();
    join.join().unwrap().unwrap();
    let page = std::fs::read_to_string(&snapshot).expect("snapshot flushed");
    assert!(page.contains("jsn_sessions_accepted_total 8"), "snapshot has final counters");
    assert!(!sock.exists(), "socket file cleaned up");
    let _ = std::fs::remove_dir_all(&dir);
}
