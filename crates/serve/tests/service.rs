//! Integration tests for `jsn serve`: wire-protocol robustness (torn
//! frames, short reads, oversize headers, version mismatches,
//! mid-session disconnects) and the end-to-end acceptance run — 32
//! concurrent slam sessions with zero dropped frames and a verdict
//! histogram bit-identical to an offline replay.
//!
//! Every robustness case must end as a clean per-session error with no
//! leaked session slot: `sessions_active` returns to zero and the
//! gauge table empties.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use mnm_serve::protocol::{
    encode_hello, FrameType, MAGIC, STATUS_BUSY, STATUS_OK, STATUS_REJECTED, VERSION,
};
use mnm_serve::server::{Endpoint, Server, ServerConfig, ServerHandle};
use mnm_serve::slam::{run_slam, scrape_metrics, SlamOptions};

/// Start a server on an ephemeral TCP port; returns its handle, the
/// endpoint, and the join handle of the accept loop.
fn start_server(
    config: ServerConfig,
) -> (ServerHandle, Endpoint, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(Endpoint::Tcp("127.0.0.1:0".to_string()), config).expect("bind");
    let endpoint = server.local_endpoint();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (handle, endpoint, join)
}

fn tcp_connect(endpoint: &Endpoint) -> TcpStream {
    let Endpoint::Tcp(addr) = endpoint else { panic!("expected tcp endpoint") };
    let s = TcpStream::connect(addr.as_str()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

/// Read the 9+detail hello reply; returns (status, detail).
fn read_hello_reply(s: &mut TcpStream) -> (u8, String) {
    let mut fixed = [0u8; 7];
    s.read_exact(&mut fixed).expect("hello reply");
    assert_eq!(&fixed[..4], &MAGIC, "reply magic");
    let status = fixed[6];
    let mut len = [0u8; 2];
    s.read_exact(&mut len).expect("detail len");
    let mut detail = vec![0u8; u16::from_le_bytes(len) as usize];
    s.read_exact(&mut detail).expect("detail");
    (status, String::from_utf8_lossy(&detail).to_string())
}

/// Read one server frame: (type byte, payload).
fn read_frame(s: &mut TcpStream) -> (u8, Vec<u8>) {
    let mut header = [0u8; 5];
    s.read_exact(&mut header).expect("frame header");
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
    let mut payload = vec![0u8; len];
    s.read_exact(&mut payload).expect("frame payload");
    (header[0], payload)
}

fn records_frame(n: usize) -> Vec<u8> {
    use trace_synth::{encode_record, Instr, InstrKind};
    let mut payload = Vec::new();
    for i in 0..n {
        encode_record(
            Instr {
                pc: 0x40_0000 + i as u64 * 4,
                kind: InstrKind::Load { addr: 0x1000_0000 + i as u64 * 64 },
                src1: 0,
                src2: 0,
            },
            &mut payload,
        );
    }
    let mut frame = vec![FrameType::Records as u8];
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Wait for the server to settle at zero active sessions.
fn wait_idle(handle: &ServerHandle) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.registry().sessions_active.load(Ordering::SeqCst) > 0 {
        assert!(Instant::now() < deadline, "sessions_active never returned to zero: leaked slot");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(handle.registry().gauge_count(), 0, "leaked session gauge");
}

fn counter(handle: &ServerHandle, which: &str) -> u64 {
    let page = handle.registry().render();
    mnm_serve::metrics::scrape_value(&page, which).unwrap_or_else(|| panic!("no metric {which}"))
}

#[test]
fn torn_frame_header_is_a_clean_error() {
    let (handle, endpoint, join) = start_server(ServerConfig::default());
    {
        let mut s = tcp_connect(&endpoint);
        s.write_all(&encode_hello("baseline")).unwrap();
        assert_eq!(read_hello_reply(&mut s).0, STATUS_OK);
        // Three bytes of a five-byte frame header, then vanish.
        s.write_all(&[1u8, 0xFF, 0x00]).unwrap();
    }
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_failed_total"), 1);
    assert_eq!(counter(&handle, "jsn_sessions_accepted_total"), 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn short_reads_are_reassembled() {
    let (handle, endpoint, join) = start_server(ServerConfig::default());
    let mut s = tcp_connect(&endpoint);
    s.write_all(&encode_hello("TMNM_12x1")).unwrap();
    assert_eq!(read_hello_reply(&mut s).0, STATUS_OK);

    // Dribble a whole records frame one byte at a time.
    let frame = records_frame(10);
    for &b in &frame {
        s.write_all(&[b]).unwrap();
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let (t, payload) = read_frame(&mut s);
    assert_eq!(
        t,
        FrameType::Summary as u8,
        "dribbled frame still replays: {:?}",
        String::from_utf8_lossy(&payload)
    );
    let accesses = u64::from_le_bytes(payload[..8].try_into().unwrap());
    assert_eq!(accesses, 10);

    // Clean finish.
    s.write_all(&[FrameType::Finish as u8, 0, 0, 0, 0]).unwrap();
    let (t, _) = read_frame(&mut s);
    assert_eq!(t, FrameType::Stats as u8);
    drop(s);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_completed_total"), 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn oversize_frame_header_is_rejected_without_allocation() {
    let (handle, endpoint, join) = start_server(ServerConfig::default());
    let mut s = tcp_connect(&endpoint);
    s.write_all(&encode_hello("baseline")).unwrap();
    assert_eq!(read_hello_reply(&mut s).0, STATUS_OK);
    // Declare a 2 GiB payload.
    s.write_all(&[FrameType::Records as u8]).unwrap();
    s.write_all(&0x8000_0000u32.to_le_bytes()).unwrap();
    let (t, payload) = read_frame(&mut s);
    assert_eq!(t, FrameType::Error as u8);
    let msg = String::from_utf8_lossy(&payload).to_string();
    assert!(msg.contains("exceeds"), "error names the bound: {msg}");
    drop(s);
    wait_idle(&handle);
    assert!(counter(&handle, "jsn_protocol_errors_total") >= 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn version_mismatch_hello_is_rejected() {
    let (handle, endpoint, join) = start_server(ServerConfig::default());
    let mut s = tcp_connect(&endpoint);
    let mut hello = Vec::new();
    hello.extend_from_slice(&MAGIC);
    hello.extend_from_slice(&99u16.to_le_bytes());
    hello.extend_from_slice(&0u16.to_le_bytes());
    s.write_all(&hello).unwrap();
    let (status, detail) = read_hello_reply(&mut s);
    assert_eq!(status, STATUS_REJECTED);
    assert!(detail.contains("version 99") && detail.contains(&VERSION.to_string()), "{detail}");
    drop(s);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_rejected_total"), 1);
    assert_eq!(counter(&handle, "jsn_sessions_accepted_total"), 0);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn unknown_preset_is_rejected_with_help() {
    let (handle, endpoint, join) = start_server(ServerConfig::default());
    let mut s = tcp_connect(&endpoint);
    s.write_all(&encode_hello("MNMX_99")).unwrap();
    let (status, detail) = read_hello_reply(&mut s);
    assert_eq!(status, STATUS_REJECTED);
    assert!(detail.contains("MNMX_99"), "{detail}");
    drop(s);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_rejected_total"), 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn mid_session_disconnect_releases_the_slot() {
    let (handle, endpoint, join) = start_server(ServerConfig::default());
    {
        let mut s = tcp_connect(&endpoint);
        s.write_all(&encode_hello("HMNM4")).unwrap();
        assert_eq!(read_hello_reply(&mut s).0, STATUS_OK);
        s.write_all(&records_frame(100)).unwrap();
        let (t, _) = read_frame(&mut s);
        assert_eq!(t, FrameType::Summary as u8);
        // Drop without Finish.
    }
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_failed_total"), 1);
    assert_eq!(counter(&handle, "jsn_frames_in_total"), 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn session_cap_rejects_with_busy() {
    let config = ServerConfig { max_sessions: 1, ..ServerConfig::default() };
    let (handle, endpoint, join) = start_server(config);

    let mut first = tcp_connect(&endpoint);
    first.write_all(&encode_hello("baseline")).unwrap();
    assert_eq!(read_hello_reply(&mut first).0, STATUS_OK);

    let mut second = tcp_connect(&endpoint);
    second.write_all(&encode_hello("baseline")).unwrap();
    let (status, detail) = read_hello_reply(&mut second);
    assert_eq!(status, STATUS_BUSY);
    assert!(detail.contains("1-session cap"), "{detail}");

    // The first session still works and finishes cleanly.
    first.write_all(&records_frame(5)).unwrap();
    let (t, _) = read_frame(&mut first);
    assert_eq!(t, FrameType::Summary as u8);
    first.write_all(&[FrameType::Finish as u8, 0, 0, 0, 0]).unwrap();
    let (t, _) = read_frame(&mut first);
    assert_eq!(t, FrameType::Stats as u8);
    drop(first);
    drop(second);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_rejected_total"), 1);
    assert_eq!(counter(&handle, "jsn_sessions_completed_total"), 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn slow_client_is_evicted() {
    let config =
        ServerConfig { stall_timeout: Duration::from_millis(250), ..ServerConfig::default() };
    let (handle, endpoint, join) = start_server(config);
    let mut s = tcp_connect(&endpoint);
    s.write_all(&encode_hello("baseline")).unwrap();
    assert_eq!(read_hello_reply(&mut s).0, STATUS_OK);
    // Say nothing. The server must hang up on its own.
    let (t, payload) = read_frame(&mut s);
    assert_eq!(t, FrameType::Error as u8);
    assert!(String::from_utf8_lossy(&payload).contains("stalled"));
    drop(s);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_evicted_total"), 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn http_scrape_serves_metrics_and_404s_elsewhere() {
    let (handle, endpoint, join) = start_server(ServerConfig::default());
    let page = scrape_metrics(&endpoint).expect("scrape");
    assert!(page.contains("jsn_sessions_accepted_total 0"));
    assert!(page.contains("jsn_request_latency_us_p99"));

    let mut s = tcp_connect(&endpoint);
    s.write_all(b"GET /nope HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    s.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 404"), "{response}");
    drop(s);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_scrapes_total"), 1);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// The acceptance run: ≥ 32 concurrent sessions, zero dropped frames,
/// scraped verdict histogram bit-identical to the offline replay.
#[test]
fn slam_32_sessions_verdicts_bit_identical_to_offline() {
    let (handle, endpoint, join) = start_server(ServerConfig::default());
    let opts = SlamOptions {
        endpoint: endpoint.clone(),
        sessions: 32,
        records: 4_000,
        frame_records: 512,
        config: "HMNM4".to_string(),
        seed: 7,
        window: 4,
        verify: true,
    };
    let report = run_slam(&opts).expect("slam");
    assert_eq!(report.sessions_failed, 0, "failures: {:?}", report.failures);
    assert_eq!(report.sessions_ok, 32);
    assert_eq!(report.dropped_frames(), 0, "dropped frames");
    assert_eq!(report.records_sent, 32 * 4_000);
    let verify = report.verify.as_ref().expect("verify ran");
    assert!(verify.compared > 0);
    assert!(verify.mismatches.is_empty(), "verdict mismatch: {:?}", verify.mismatches);
    wait_idle(&handle);
    assert_eq!(counter(&handle, "jsn_sessions_completed_total"), 32);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Unix-socket transport end to end, plus the shutdown snapshot flushed
/// through the atomic fsio writer.
#[test]
fn unix_socket_slam_and_shutdown_snapshot() {
    let dir = std::env::temp_dir().join(format!("jsn-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("jsn.sock");
    let snapshot = dir.join("metrics-final.txt");

    let config = ServerConfig { snapshot_path: Some(snapshot.clone()), ..ServerConfig::default() };
    let server = Server::bind(Endpoint::Unix(sock.clone()), config).expect("bind unix");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let opts = SlamOptions {
        endpoint: Endpoint::Unix(sock.clone()),
        sessions: 8,
        records: 2_000,
        frame_records: 256,
        config: "TMNM_12x1".to_string(),
        seed: 11,
        window: 2,
        verify: true,
    };
    let report = run_slam(&opts).expect("slam over unix socket");
    assert_eq!(report.sessions_failed, 0, "failures: {:?}", report.failures);
    assert_eq!(report.dropped_frames(), 0);
    let verify = report.verify.as_ref().expect("verify ran");
    assert!(verify.mismatches.is_empty(), "verdict mismatch: {:?}", verify.mismatches);

    handle.shutdown();
    join.join().unwrap().unwrap();
    let page = std::fs::read_to_string(&snapshot).expect("snapshot flushed");
    assert!(page.contains("jsn_sessions_accepted_total 8"), "snapshot has final counters");
    assert!(!sock.exists(), "socket file cleaned up");
    let _ = std::fs::remove_dir_all(&dir);
}
