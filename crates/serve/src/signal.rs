//! Minimal async-signal-safe shutdown flag for SIGINT / SIGTERM.
//!
//! The workspace is dependency-free, so instead of a signal crate this
//! declares the two libc symbols std already links against. The handler
//! does the only async-signal-safe thing possible: store to a static
//! atomic, which the server's accept and session loops poll.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set once a shutdown signal arrives.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// `SIGINT` (ctrl-c).
pub const SIGINT: i32 = 2;
/// `SIGTERM`.
pub const SIGTERM: i32 = 15;

#[cfg(unix)]
mod ffi {
    /// C signal-handler function pointer.
    pub type Handler = extern "C" fn(i32);

    extern "C" {
        /// POSIX `signal(2)`; std links libc on every unix target.
        pub fn signal(signum: i32, handler: Handler) -> usize;
        /// POSIX `raise(3)` — send a signal to this process.
        pub fn raise(signum: i32) -> i32;
    }
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Install handlers for SIGINT and SIGTERM that trip the shutdown flag.
/// Idempotent; a no-op on non-unix targets.
pub fn install() {
    #[cfg(unix)]
    unsafe {
        ffi::signal(SIGINT, on_signal);
        ffi::signal(SIGTERM, on_signal);
    }
}

/// Whether a shutdown signal has arrived (or [`request`] was called).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Trip the flag programmatically (tests, in-process shutdown).
pub fn request() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clear the flag (tests only — real servers exit after shutdown).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// Deliver a real signal to this process via `raise(3)`, exercising
/// the installed handler end to end (drain tests). No-op off unix.
pub fn raise(signum: i32) {
    #[cfg(unix)]
    unsafe {
        ffi::raise(signum);
    }
    #[cfg(not(unix))]
    let _ = signum;
}
