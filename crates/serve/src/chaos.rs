//! `jsn chaos`: a deterministic network-fault proxy for the serving
//! stack.
//!
//! Sits between `jsn slam` and `jsn serve`, relaying bytes in both
//! directions while injecting faults decided **purely** by a seeded
//! plan — the `JSN_CHAOS` environment variable, mirroring the
//! `JSN_FAULT` grammar of the offline experiment runner:
//!
//! ```text
//! JSN_CHAOS=seed=42,tear=1/24,delay=1/16:5,drop=1/64,corrupt=1/24,dup=1/32
//! ```
//!
//! Each clause is an `m/n` ratio; `delay` takes a trailing `:ms`
//! duration. Parsing is strict (unknown, duplicate, or malformed
//! clauses are hard errors), because a soak armed with a typo'd plan
//! would otherwise run clean and prove nothing.
//!
//! ## Determinism
//!
//! Every byte stream is divided into fixed [`CELL`]-byte cells. For
//! each `(fault kind, connection, direction, cell)` tuple the plan
//! derives a hash; the hash decides whether the fault fires in that
//! cell *and* at which absolute byte offset within it. Because
//! decisions are keyed to absolute stream offsets — never to how the
//! kernel happened to chunk a read — the same seed against the same
//! byte streams fires the same faults at the same offsets, and the
//! fired-fault log is reproducible byte for byte. Two details make
//! that hold at connection teardown, where TCP timing is inherently
//! racy:
//!
//! * a relay whose destination dies keeps *reading* its source and
//!   recording fault decisions (sinking the undeliverable bytes), so
//!   the log depends only on what the source wrote — which is decided
//!   by deterministic client/server code — never on which write
//!   happened to fail first;
//! * a terminal fault closes both sockets and lets the opposite relay
//!   drain its source to EOF, rather than signalling it to stop at a
//!   racy point mid-stream.
//!
//! Connection ids are assigned in accept order, so full-log
//! determinism holds when connections are sequential (single-session
//! soaks); concurrent soaks are still per-connection deterministic.
//!
//! The faults:
//!
//! | kind | effect at the fault offset |
//! |------|---------------------------|
//! | `corrupt` | XOR one byte with a seeded nonzero mask |
//! | `dup`     | emit the byte twice (a minimal duplicated write that desynchronizes framing) |
//! | `delay`   | stall the relay for the configured milliseconds |
//! | `tear`    | deliver bytes before the offset, then cut the connection (torn frame) |
//! | `drop`    | deliver bytes before the offset, then cut the connection (reset) |
//!
//! `tear` and `drop` are mechanically the same cut — delivering the
//! offset-exact prefix is what keeps the shear reproducible — but they
//! are sampled independently, so a profile can dial torn-frame-heavy
//! and reset-heavy mixes separately; at the peer they surface as torn
//! mid-frame reads or clean closes depending on where the offset lands
//! relative to frame boundaries.
//!
//! Every fired fault is recorded `(conn, direction, cell, offset,
//! kind)`; [`ChaosHandle::fired_log`] renders the log sorted so two
//! runs can be `diff`ed, and `jsn chaos` writes it through the
//! crash-safe `fsio` writer on shutdown.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::server::{Conn, Endpoint};
use crate::signal;

/// Environment variable holding the chaos plan.
pub const ENV_CHAOS: &str = "JSN_CHAOS";

/// Fault-decision granularity: one decision per fault kind per
/// [`CELL`] bytes of stream, keyed to absolute offsets so kernel read
/// chunking cannot move a fault.
pub const CELL: u64 = 1024;

/// Default stall when a `delay` clause gives no `:ms` suffix.
const DEFAULT_DELAY_MS: u64 = 5;

/// Socket poll tick for the relay loops.
const TICK: Duration = Duration::from_millis(20);

/// The injectable fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChaosKind {
    /// Flip one byte.
    Corrupt,
    /// Duplicate one byte (desynchronizes framing downstream).
    Dup,
    /// Stall the relay.
    Delay,
    /// Close one direction mid-stream (torn write).
    Tear,
    /// Reset the whole connection.
    Drop,
}

impl ChaosKind {
    /// Stable name, used both for decision hashing and the log.
    pub fn name(self) -> &'static str {
        match self {
            ChaosKind::Corrupt => "corrupt",
            ChaosKind::Dup => "dup",
            ChaosKind::Delay => "delay",
            ChaosKind::Tear => "tear",
            ChaosKind::Drop => "drop",
        }
    }

    const ALL: [ChaosKind; 5] =
        [ChaosKind::Corrupt, ChaosKind::Dup, ChaosKind::Delay, ChaosKind::Tear, ChaosKind::Drop];
}

/// Relay direction, part of every fault decision and log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Direction {
    /// Client → server bytes.
    ClientToServer,
    /// Server → client bytes.
    ServerToClient,
}

impl Direction {
    fn name(self) -> &'static str {
        match self {
            Direction::ClientToServer => "c2s",
            Direction::ServerToClient => "s2c",
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A parsed `JSN_CHAOS` plan: a seed plus one optional `m/n` ratio per
/// fault kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    seed: u64,
    corrupt: Option<(u64, u64)>,
    dup: Option<(u64, u64)>,
    delay: Option<(u64, u64)>,
    delay_ms: u64,
    tear: Option<(u64, u64)>,
    drop: Option<(u64, u64)>,
}

/// One scheduled fault inside a cell: where, and what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CellFault {
    kind: ChaosKind,
    /// Absolute byte offset in the stream where it fires.
    offset: u64,
}

impl ChaosPlan {
    /// Parse a plan like `seed=42,tear=1/24,delay=1/16:5,corrupt=1/24`.
    ///
    /// Each fault clause takes an `m/n` ratio (fire in ~m of n cells);
    /// `delay` accepts a trailing `:ms` duration. `seed` defaults to 0.
    ///
    /// Parsing is strict, like `JSN_FAULT`: unknown or duplicate
    /// clauses, malformed ratios, and bad delay durations are hard
    /// errors — a chaos soak with a silently inert plan would pass
    /// while proving nothing.
    pub fn parse(input: &str) -> Result<ChaosPlan, String> {
        let mut plan = ChaosPlan {
            seed: 0,
            corrupt: None,
            dup: None,
            delay: None,
            delay_ms: DEFAULT_DELAY_MS,
            tear: None,
            drop: None,
        };
        let mut seen: Vec<&str> = Vec::new();
        for clause in input.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("{ENV_CHAOS}: clause `{clause}` is not `key=value`"))?;
            let key = key.trim();
            if seen.contains(&key) {
                return Err(format!(
                    "{ENV_CHAOS}: duplicate `{key}` clause (the first would be silently ignored)"
                ));
            }
            match key {
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("{ENV_CHAOS}: bad seed `{value}`"))?;
                }
                "corrupt" => plan.corrupt = Some(parse_ratio(value)?),
                "dup" => plan.dup = Some(parse_ratio(value)?),
                "tear" => plan.tear = Some(parse_ratio(value)?),
                "drop" => plan.drop = Some(parse_ratio(value)?),
                "delay" => {
                    let (sel, ms) = match value.rsplit_once(':') {
                        Some((head, tail)) => {
                            let ms = tail.trim().parse::<u64>().map_err(|_| {
                                format!(
                                    "{ENV_CHAOS}: delay duration `{tail}` is not a \
                                     millisecond count"
                                )
                            })?;
                            (head, ms)
                        }
                        None => (value, DEFAULT_DELAY_MS),
                    };
                    plan.delay = Some(parse_ratio(sel)?);
                    plan.delay_ms = ms;
                }
                other => return Err(format!("{ENV_CHAOS}: unknown clause `{other}`")),
            }
            seen.push(key);
        }
        Ok(plan)
    }

    /// Read the plan from `JSN_CHAOS`; `Ok(None)` when unset or empty.
    pub fn from_env() -> Result<Option<ChaosPlan>, String> {
        match std::env::var(ENV_CHAOS) {
            Ok(v) if !v.trim().is_empty() => ChaosPlan::parse(&v).map(Some),
            Ok(_) => Ok(None),
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(_)) => {
                Err(format!("{ENV_CHAOS}: value is not valid unicode"))
            }
        }
    }

    /// The configured delay duration.
    pub fn delay_ms(&self) -> u64 {
        self.delay_ms
    }

    fn ratio(&self, kind: ChaosKind) -> Option<(u64, u64)> {
        match kind {
            ChaosKind::Corrupt => self.corrupt,
            ChaosKind::Dup => self.dup,
            ChaosKind::Delay => self.delay,
            ChaosKind::Tear => self.tear,
            ChaosKind::Drop => self.drop,
        }
    }

    /// The per-kind decision hash for one cell of one stream.
    fn cell_hash(&self, kind: ChaosKind, conn: u64, dir: Direction, cell: u64) -> u64 {
        splitmix64(
            self.seed
                ^ fnv1a(kind.name())
                ^ fnv1a(dir.name())
                ^ splitmix64(conn).rotate_left(17)
                ^ splitmix64(cell).rotate_left(41),
        )
    }

    /// The faults scheduled for `cell` of `(conn, dir)`, sorted by
    /// offset. Pure: same inputs, same schedule, forever.
    fn cell_faults(&self, conn: u64, dir: Direction, cell: u64) -> Vec<CellFault> {
        let mut out = Vec::new();
        for kind in ChaosKind::ALL {
            let Some((m, n)) = self.ratio(kind) else { continue };
            let h = self.cell_hash(kind, conn, dir, cell);
            if h % n < m {
                out.push(CellFault { kind, offset: cell * CELL + splitmix64(h) % CELL });
            }
        }
        // Stable order: by offset, ties broken by kind so the schedule
        // never depends on iteration luck.
        out.sort_by_key(|f| (f.offset, f.kind));
        out
    }

    /// One-line human description for run banners.
    pub fn summary(&self) -> String {
        let fmt = |r: Option<(u64, u64)>| match r {
            Some((m, n)) => format!("{m}/{n}"),
            None => "off".to_string(),
        };
        format!(
            "chaos plan: seed={} corrupt={} dup={} delay={} ({}ms) tear={} drop={}",
            self.seed,
            fmt(self.corrupt),
            fmt(self.dup),
            fmt(self.delay),
            self.delay_ms,
            fmt(self.tear),
            fmt(self.drop),
        )
    }
}

fn parse_ratio(value: &str) -> Result<(u64, u64), String> {
    let value = value.trim();
    let (m, n) = value
        .split_once('/')
        .ok_or_else(|| format!("{ENV_CHAOS}: selector `{value}` is not an `m/n` ratio"))?;
    let m = m
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("{ENV_CHAOS}: ratio `{value}` has a bad numerator"))?;
    let n = n
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("{ENV_CHAOS}: ratio `{value}` has a bad denominator"))?;
    if n == 0 {
        return Err(format!("{ENV_CHAOS}: ratio `{value}` has zero denominator"));
    }
    Ok((m, n))
}

/// One fault the proxy actually fired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FiredFault {
    /// Connection id (accept order, starting at 1).
    pub conn: u64,
    /// Which direction's stream.
    pub dir: Direction,
    /// The absolute byte offset the fault fired at.
    pub offset: u64,
    /// What fired.
    pub kind: ChaosKind,
}

impl FiredFault {
    fn render(&self) -> String {
        format!(
            "conn={} dir={} cell={} offset={} kind={}",
            self.conn,
            self.dir.name(),
            self.offset / CELL,
            self.offset,
            self.kind.name()
        )
    }
}

/// Chaos proxy options.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Where the proxy listens (clients connect here).
    pub listen: Endpoint,
    /// The real server to relay to.
    pub upstream: Endpoint,
    /// The fault plan.
    pub plan: ChaosPlan,
    /// Where to write the fired-fault log on shutdown.
    pub log_path: Option<PathBuf>,
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }

    fn set_nonblocking(&self, v: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(v),
            Listener::Unix(l) => l.set_nonblocking(v),
        }
    }
}

fn connect_upstream(endpoint: &Endpoint) -> std::io::Result<Conn> {
    match endpoint {
        Endpoint::Tcp(addr) => std::net::TcpStream::connect(addr.as_str()).map(Conn::Tcp),
        Endpoint::Unix(path) => std::os::unix::net::UnixStream::connect(path).map(Conn::Unix),
    }
}

/// A handle for stopping a running proxy and reading its fault log.
#[derive(Clone)]
pub struct ChaosHandle {
    shutdown: Arc<AtomicBool>,
    fired: Arc<Mutex<Vec<FiredFault>>>,
}

impl ChaosHandle {
    /// Ask the proxy to stop accepting and exit.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Snapshot of every fault fired so far.
    pub fn fired(&self) -> Vec<FiredFault> {
        self.fired.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// The fired-fault log, one line per fault, sorted `(conn, dir,
    /// offset, kind)` so two runs of the same seed diff clean.
    pub fn fired_log(&self) -> String {
        let mut faults = self.fired();
        faults.sort();
        let mut out = String::with_capacity(faults.len() * 48 + 1);
        for f in &faults {
            out.push_str(&f.render());
            out.push('\n');
        }
        out
    }
}

/// The proxy: bind with [`ChaosProxy::bind`], then block in
/// [`ChaosProxy::run`].
pub struct ChaosProxy {
    listener: Listener,
    options: ChaosOptions,
    shutdown: Arc<AtomicBool>,
    fired: Arc<Mutex<Vec<FiredFault>>>,
    next_conn: AtomicU64,
}

impl ChaosProxy {
    /// Bind the listen endpoint. A stale unix socket file is removed
    /// first.
    pub fn bind(options: ChaosOptions) -> std::io::Result<ChaosProxy> {
        let listener = match &options.listen {
            Endpoint::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr.as_str())?),
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                Listener::Unix(UnixListener::bind(path)?)
            }
        };
        Ok(ChaosProxy {
            listener,
            options,
            shutdown: Arc::new(AtomicBool::new(false)),
            fired: Arc::new(Mutex::new(Vec::new())),
            next_conn: AtomicU64::new(1),
        })
    }

    /// The bound listen endpoint (resolves TCP port 0).
    pub fn local_endpoint(&self) -> Endpoint {
        match (&self.listener, &self.options.listen) {
            (Listener::Tcp(l), _) => match l.local_addr() {
                Ok(a) => Endpoint::Tcp(a.to_string()),
                Err(_) => self.options.listen.clone(),
            },
            (Listener::Unix(_), e) => e.clone(),
        }
    }

    /// A handle for shutdown and fault-log access.
    pub fn handle(&self) -> ChaosHandle {
        ChaosHandle { shutdown: Arc::clone(&self.shutdown), fired: Arc::clone(&self.fired) }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::requested()
    }

    /// Accept and relay until shutdown, then flush the fired-fault log.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut relays: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shutting_down() {
            match self.listener.accept() {
                Ok(client) => {
                    let conn_id = self.next_conn.fetch_add(1, Ordering::Relaxed);
                    let upstream = match connect_upstream(&self.options.upstream) {
                        Ok(u) => u,
                        Err(_) => {
                            client.shutdown_both();
                            continue;
                        }
                    };
                    let (Ok(client_r), Ok(upstream_r)) = (client.try_clone(), upstream.try_clone())
                    else {
                        client.shutdown_both();
                        upstream.shutdown_both();
                        continue;
                    };
                    for (src, dst, dir) in [
                        (client, upstream, Direction::ClientToServer),
                        (upstream_r, client_r, Direction::ServerToClient),
                    ] {
                        let plan = self.options.plan.clone();
                        let fired = Arc::clone(&self.fired);
                        let shutdown = Arc::clone(&self.shutdown);
                        relays.push(std::thread::spawn(move || {
                            relay(src, dst, &plan, conn_id, dir, &fired, &shutdown);
                        }));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(TICK);
                    relays.retain(|r| !r.is_finished());
                }
                Err(e) => return Err(e),
            }
        }
        for r in relays {
            let _ = r.join();
        }
        if let Some(path) = &self.options.log_path {
            let log = self.handle().fired_log();
            mnm_experiments::fsio::write_artifact(path, log.as_bytes())?;
        }
        if let Endpoint::Unix(path) = &self.options.listen {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

fn record(fired: &Mutex<Vec<FiredFault>>, fault: FiredFault) {
    fired.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(fault);
}

/// Relay one direction of one connection, injecting the plan's faults.
///
/// Reads never cross a cell boundary, so each relayed chunk lies in
/// exactly one cell and every fault offset falls inside at most one
/// chunk — which is what makes the injected byte stream a pure
/// function of (plan, conn, dir, clean stream), independent of read
/// chunking.
///
/// A destination that dies does NOT stop the relay: it switches to
/// *sinking* — reading, deciding, and recording as before, discarding
/// the output. Which write fails first is a TCP-buffering race, and
/// letting it truncate the loop would make the fired-fault log depend
/// on that race; the source closing (a deterministic consequence of
/// client/server code) is the only clean end of stream.
fn relay(
    mut src: Conn,
    mut dst: Conn,
    plan: &ChaosPlan,
    conn_id: u64,
    dir: Direction,
    fired: &Mutex<Vec<FiredFault>>,
    shutdown: &AtomicBool,
) {
    let _ = src.set_timeouts(TICK);
    let _ = dst.set_timeouts(TICK);
    let mut offset: u64 = 0;
    let mut sinking = false;
    let mut buf = vec![0u8; CELL as usize];
    let mut out: Vec<u8> = Vec::with_capacity(CELL as usize + 8);
    let flush = |dst: &mut Conn, out: &mut Vec<u8>, sinking: &mut bool| {
        if !*sinking && !out.is_empty() && write_all_tolerant(dst, out, shutdown).is_err() {
            *sinking = true;
        }
        out.clear();
    };
    loop {
        if shutdown.load(Ordering::SeqCst) || signal::requested() {
            break;
        }
        let room = (CELL - offset % CELL) as usize;
        let n = match src.read(&mut buf[..room]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let chunk = &buf[..n];
        let start = offset;
        let end = offset + n as u64;
        offset = end;

        // Faults scheduled in this chunk's cell that land inside this
        // chunk's absolute byte range, in offset order.
        let cell = start / CELL;
        let faults: Vec<CellFault> = plan
            .cell_faults(conn_id, dir, cell)
            .into_iter()
            .filter(|f| f.offset >= start && f.offset < end)
            .collect();

        out.clear();
        let mut cursor = start;
        for fault in faults {
            let rel = (fault.offset - start) as usize;
            match fault.kind {
                ChaosKind::Delay => {
                    // Flush what precedes the fault point, then stall.
                    out.extend_from_slice(&chunk[(cursor - start) as usize..rel]);
                    cursor = fault.offset;
                    flush(&mut dst, &mut out, &mut sinking);
                    record(
                        fired,
                        FiredFault { conn: conn_id, dir, offset: fault.offset, kind: fault.kind },
                    );
                    std::thread::sleep(Duration::from_millis(plan.delay_ms));
                }
                ChaosKind::Corrupt => {
                    out.extend_from_slice(&chunk[(cursor - start) as usize..rel]);
                    cursor = fault.offset + 1;
                    let mask = (splitmix64(plan.cell_hash(fault.kind, conn_id, dir, cell) ^ 0xC0)
                        % 255
                        + 1) as u8;
                    out.push(chunk[rel] ^ mask);
                    record(
                        fired,
                        FiredFault { conn: conn_id, dir, offset: fault.offset, kind: fault.kind },
                    );
                }
                ChaosKind::Dup => {
                    out.extend_from_slice(&chunk[(cursor - start) as usize..rel]);
                    cursor = fault.offset + 1;
                    out.push(chunk[rel]);
                    out.push(chunk[rel]);
                    record(
                        fired,
                        FiredFault { conn: conn_id, dir, offset: fault.offset, kind: fault.kind },
                    );
                }
                ChaosKind::Tear | ChaosKind::Drop => {
                    // Deliver exactly the bytes before the fault
                    // offset, then cut the whole connection. The
                    // delivered prefix is offset-exact, so reruns
                    // shear at the same byte.
                    out.extend_from_slice(&chunk[(cursor - start) as usize..rel]);
                    flush(&mut dst, &mut out, &mut sinking);
                    record(
                        fired,
                        FiredFault { conn: conn_id, dir, offset: fault.offset, kind: fault.kind },
                    );
                    src.shutdown_both();
                    dst.shutdown_both();
                    return;
                }
            }
        }
        out.extend_from_slice(&chunk[(cursor - start) as usize..]);
        flush(&mut dst, &mut out, &mut sinking);
    }
    // Natural end of stream: pass the FIN downstream but leave the
    // paired direction alone — it drains to its own EOF. A full
    // teardown here would cut the opposite relay's source at a
    // buffering-dependent instant and make the fired log racy.
    dst.shutdown_write();
}

/// `write_all` over a socket with a poll-tick timeout.
fn write_all_tolerant(conn: &mut Conn, mut buf: &[u8], shutdown: &AtomicBool) -> Result<(), ()> {
    while !buf.is_empty() {
        if shutdown.load(Ordering::SeqCst) {
            return Err(());
        }
        match conn.write(buf) {
            Ok(0) => return Err(()),
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return Err(()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let p =
            ChaosPlan::parse("seed=42, tear=1/24, delay=1/16:5, drop=1/64, corrupt=1/24, dup=1/32")
                .unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.tear, Some((1, 24)));
        assert_eq!(p.delay, Some((1, 16)));
        assert_eq!(p.delay_ms, 5);
        assert_eq!(p.drop, Some((1, 64)));
        assert_eq!(p.corrupt, Some((1, 24)));
        assert_eq!(p.dup, Some((1, 32)));
        assert!(p.summary().contains("tear=1/24"));
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in [
            "tear",            // not key=value
            "wat=1/2",         // unknown clause
            "seed=x",          // bad seed
            "tear=1/0",        // zero denominator
            "corrupt=",        // empty ratio
            "corrupt=site",    // chaos has no site selectors
            "delay=1/6:25x",   // malformed ms tail
            "tear=1/4,tear=1", // duplicate clause
        ] {
            assert!(ChaosPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
        assert!(ChaosPlan::parse("").is_ok(), "an empty plan relays clean");
    }

    #[test]
    fn cell_schedule_is_deterministic_and_seed_sensitive() {
        let a = ChaosPlan::parse("seed=1,corrupt=1/4,tear=1/8").unwrap();
        let b = ChaosPlan::parse("seed=2,corrupt=1/4,tear=1/8").unwrap();
        let schedule = |p: &ChaosPlan| -> Vec<Vec<CellFault>> {
            (0..256).map(|c| p.cell_faults(7, Direction::ClientToServer, c)).collect()
        };
        assert_eq!(schedule(&a), schedule(&a), "same plan, same schedule");
        assert_ne!(schedule(&a), schedule(&b), "seed changes the schedule");
        // Directions are independent decisions.
        let c2s: Vec<_> =
            (0..256).map(|c| a.cell_faults(7, Direction::ClientToServer, c)).collect();
        let s2c: Vec<_> =
            (0..256).map(|c| a.cell_faults(7, Direction::ServerToClient, c)).collect();
        assert_ne!(c2s, s2c);
        // A 1/4 ratio over 256 cells fires a nontrivial subset.
        let hits = c2s.iter().filter(|f| !f.is_empty()).count();
        assert!(hits > 16 && hits < 240, "{hits} of 256 cells faulted");
    }

    #[test]
    fn fault_offsets_stay_inside_their_cell() {
        let p = ChaosPlan::parse("seed=9,corrupt=1/1,dup=1/1,delay=1/1,tear=1/1,drop=1/1").unwrap();
        for cell in 0..64 {
            for f in p.cell_faults(3, Direction::ServerToClient, cell) {
                assert!(f.offset >= cell * CELL && f.offset < (cell + 1) * CELL, "{f:?}");
            }
        }
    }

    #[test]
    fn fired_log_renders_sorted() {
        let fired = Arc::new(Mutex::new(vec![
            FiredFault {
                conn: 2,
                dir: Direction::ClientToServer,
                offset: 10,
                kind: ChaosKind::Dup,
            },
            FiredFault {
                conn: 1,
                dir: Direction::ServerToClient,
                offset: 2048,
                kind: ChaosKind::Tear,
            },
            FiredFault {
                conn: 1,
                dir: Direction::ClientToServer,
                offset: 99,
                kind: ChaosKind::Corrupt,
            },
        ]));
        let handle = ChaosHandle { shutdown: Arc::new(AtomicBool::new(false)), fired };
        let log = handle.fired_log();
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "conn=1 dir=c2s cell=0 offset=99 kind=corrupt");
        assert_eq!(lines[1], "conn=1 dir=s2c cell=2 offset=2048 kind=tear");
        assert_eq!(lines[2], "conn=2 dir=c2s cell=0 offset=10 kind=dup");
    }
}
