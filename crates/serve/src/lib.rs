//! # mnm-serve — a long-running trace-stream replay service
//!
//! Turns the batch replay machinery of this workspace into a daemon:
//! `jsn serve` listens on TCP or a unix socket, gives every connection
//! its own cache hierarchy plus miss-filter preset, and replays the
//! trace records the client streams at it, answering each frame with a
//! batch summary. `GET /metrics` on the same port serves a live
//! Prometheus-style page: verdict histograms (hit / maybe-miss /
//! definite-miss per structure), request-latency percentiles, filter
//! occupancy and session counters.
//!
//! `jsn slam` is the companion load generator: N concurrent synthetic
//! sessions, deterministic per-seed, with an offline-verification mode
//! that proves the served verdict counts are bit-identical to a local
//! replay — the service path *is* the replay path ([`SessionCore`] is
//! shared by both).
//!
//! Module map:
//!
//! * [`protocol`] — wire format: hello, CRC-framed records, bounded decode
//! * [`session`] — per-connection replay state ([`SessionCore`])
//! * [`metrics`] — shared counters + scrape-page rendering
//! * [`server`] — accept loop, back-pressure, resume parking, shedding
//! * [`slam`] — load generator: retry/resume client + verification
//! * [`chaos`] — deterministic network-fault proxy (`jsn chaos`)
//! * [`signal`] — std-only SIGINT/SIGTERM flag

#![warn(missing_docs)]

pub mod chaos;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod session;
pub mod signal;
pub mod slam;

pub use chaos::{ChaosHandle, ChaosOptions, ChaosPlan, ChaosProxy};
pub use metrics::{Registry, SessionGauge};
pub use protocol::{FrameType, SessionStatsWire, WireError, MAX_FRAME_BYTES, VERSION};
pub use server::{Endpoint, Server, ServerConfig, ServerHandle};
pub use session::{SessionCore, SessionFilter};
pub use slam::{run_slam, SlamOptions, SlamReport};
