//! The `jsn serve` wire protocol, version 2.
//!
//! A session is one *logical* replay stream; since v2 it may span many
//! connections. The client opens each connection with a **hello**:
//!
//! ```text
//! magic "JSNS" (4) | version u16 LE | config_len u16 LE | config utf-8 | resume_token u64 LE
//! ```
//!
//! where `config` is a filter preset label: `baseline`, `perfect`, or any
//! label accepted by `MnmConfig::parse` (`HMNM4`, `TMNM_12x1`, ...), and
//! `resume_token` is 0 for a new session or a token a previous hello
//! reply issued (the connection then *resumes* that parked session).
//!
//! The server answers with a reply whose prefix is identical in shape
//! across protocol versions — so a version mismatch in either direction
//! decodes cleanly instead of shearing:
//!
//! ```text
//! magic (4) | version u16 LE | status u8 | detail_len u16 LE | detail utf-8
//!     | (status == OK only) session_token u64 LE | last_acked_seq u64 LE
//! ```
//!
//! `last_acked_seq` is the highest `Records` sequence number the server
//! has applied for this session; a resuming client replays only frames
//! after it. A `STATUS_BUSY` reply's detail may carry a
//! `retry_after_ms=N` hint (see [`parse_retry_after_ms`]).
//!
//! After an accepted hello, both directions speak **frames**:
//!
//! ```text
//! type u8 | payload_len u32 LE | crc32 u32 LE | payload
//! ```
//!
//! The CRC-32 (IEEE, table-driven, from `trace-synth`) covers the type
//! byte, the length field, and the payload, so any wire corruption —
//! flipped bits, duplicated or sheared writes — is *detected* rather
//! than mis-decoded into plausible records. A frame whose CRC fails is
//! a [`WireError::Crc`], never a decode.
//!
//! | type | direction | payload |
//! |------|-----------|---------|
//! | [`FrameType::Records`] | client → server | `seq u64 LE` then `k` × 20-byte trace records (the `trace-synth` file encoding, sans file header) |
//! | [`FrameType::Finish`]  | client → server | empty |
//! | [`FrameType::Summary`] | server → client | `seq u64 LE` then 5 × u64 LE: accesses, total latency, L1 hits, misses, bypassed probes |
//! | [`FrameType::Stats`]   | server → client | final session stats, see [`SessionStatsWire`] |
//! | [`FrameType::Error`]   | server → client | utf-8 message; the connection closes after it |
//!
//! `Records` sequence numbers start at 1 and increase by exactly 1.
//! Every `Records` frame is answered by one `Summary` echoing its `seq`;
//! a frame with `seq ≤ last_acked` is a **replay** (a reconnecting
//! client re-sending what the server already applied) and is re-acked
//! from a bounded summary buffer without touching the replay state —
//! this is what makes verdict accounting exactly-once under connection
//! loss. `Finish` is answered by one `Stats`. Payload lengths are
//! bounded ([`MAX_FRAME_BYTES`] by default, server-configurable) so a
//! hostile or corrupt length field cannot make the server allocate
//! unbounded memory.
//!
//! All decode paths return [`WireError`] — never panic — because each
//! byte may come from a torn write, a short read or a malicious peer.

use trace_synth::{crc32, decode_record, Crc32, Instr, RECORD_BYTES};

/// Connection magic: first four bytes of every hello.
pub const MAGIC: [u8; 4] = *b"JSNS";

/// Protocol version spoken by this build.
pub const VERSION: u16 = 2;

/// The legacy protocol version (no CRC, no sequence numbers, no
/// resume). Kept for the bidirectional version-mismatch tests.
pub const VERSION_V1: u16 = 1;

/// Frame header size: type byte + u32 payload length + u32 CRC.
pub const FRAME_HEADER_BYTES: usize = 9;

/// Size of the `seq u64` prefix of `Records` and `Summary` payloads.
pub const SEQ_BYTES: usize = 8;

/// Default upper bound on a frame payload. 64 KiB holds ~3276 records,
/// far above the useful batch size for `process_many`.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024;

/// Upper bound on the hello config-label length.
pub const MAX_CONFIG_BYTES: usize = 128;

/// Hello status byte: session accepted.
pub const STATUS_OK: u8 = 0;
/// Hello status byte: server at its session cap or shedding load; the
/// detail may carry a `retry_after_ms=N` hint.
pub const STATUS_BUSY: u8 = 1;
/// Hello status byte: bad config label / version / magic / token.
pub const STATUS_REJECTED: u8 = 2;

/// Frame type tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client → server: a sequence number and a batch of trace records.
    Records = 1,
    /// Client → server: end of stream, request final stats.
    Finish = 2,
    /// Server → client: batch summary for one `Records` frame.
    Summary = 3,
    /// Server → client: final session statistics.
    Stats = 4,
    /// Server → client: terminal error description.
    Error = 5,
}

impl FrameType {
    /// Decode a frame-type byte.
    pub fn from_u8(v: u8) -> Option<FrameType> {
        match v {
            1 => Some(FrameType::Records),
            2 => Some(FrameType::Finish),
            3 => Some(FrameType::Summary),
            4 => Some(FrameType::Stats),
            5 => Some(FrameType::Error),
            _ => None,
        }
    }
}

/// Everything that can go wrong reading the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// The peer closed mid-frame or mid-hello: a torn write.
    Torn {
        /// What was being read when the stream ended.
        context: &'static str,
    },
    /// The peer made no byte progress mid-frame for longer than the
    /// stall budget.
    Stalled,
    /// The peer sent no new frame for longer than the idle deadline.
    Idle,
    /// The server is shutting down.
    Shutdown,
    /// Underlying socket error.
    Io(String),
    /// Hello did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// Hello carried an unsupported version.
    BadVersion {
        /// The version the peer requested.
        got: u16,
    },
    /// Hello config label was too long or not utf-8.
    BadConfig(String),
    /// Hello carried a resume token the server does not know (expired,
    /// never issued, or already drained).
    BadToken,
    /// Unknown frame-type byte.
    BadFrameType(u8),
    /// Declared payload length exceeds the negotiated bound.
    Oversize {
        /// Declared payload length.
        len: u32,
        /// The server's bound.
        max: u32,
    },
    /// The frame checksum did not match: wire corruption.
    Crc {
        /// CRC carried by the frame header.
        expected: u32,
        /// CRC computed over the received bytes.
        got: u32,
    },
    /// A `Records` payload was not a multiple of the record size, or a
    /// record failed to decode.
    BadRecords(String),
    /// A `Records` sequence number skipped ahead: frames were lost in a
    /// way replay cannot repair.
    SeqGap {
        /// Highest sequence number applied so far.
        acked: u64,
        /// The sequence number the frame carried.
        got: u64,
    },
    /// The peer sent a frame type that is invalid in its direction or
    /// session state.
    Unexpected(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Torn { context } => {
                write!(f, "connection closed mid-{context} (torn frame)")
            }
            WireError::Stalled => write!(f, "peer stalled past the read budget"),
            WireError::Idle => write!(f, "session idle past the frame deadline"),
            WireError::Shutdown => write!(f, "server shutting down"),
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}, expected \"JSNS\""),
            WireError::BadVersion { got } => {
                write!(f, "unsupported protocol version {got}, this server speaks {VERSION}")
            }
            WireError::BadConfig(e) => write!(f, "bad hello config: {e}"),
            WireError::BadToken => {
                write!(f, "unknown or expired resume token (the parked session is gone)")
            }
            WireError::BadFrameType(t) => write!(f, "unknown frame type {t}"),
            WireError::Oversize { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte bound")
            }
            WireError::Crc { expected, got } => {
                write!(f, "frame crc mismatch (header {expected:#010x}, wire {got:#010x}): corruption detected")
            }
            WireError::BadRecords(e) => write!(f, "bad records payload: {e}"),
            WireError::SeqGap { acked, got } => {
                write!(f, "records seq {got} skips ahead of acked {acked}: lost frames")
            }
            WireError::Unexpected(what) => write!(f, "unexpected frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The frame type.
    pub frame_type: FrameType,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// CRC-32 over type byte, length field, and payload.
    pub crc: u32,
}

/// Parse a frame header from its [`FRAME_HEADER_BYTES`] wire bytes,
/// enforcing the payload bound. The CRC is *not* verified here — the
/// payload has not been read yet; call [`verify_frame_crc`] after.
pub fn parse_frame_header(
    bytes: &[u8; FRAME_HEADER_BYTES],
    max_payload: u32,
) -> Result<FrameHeader, WireError> {
    let frame_type = FrameType::from_u8(bytes[0]).ok_or(WireError::BadFrameType(bytes[0]))?;
    let payload_len = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]);
    let crc = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]);
    if payload_len > max_payload {
        return Err(WireError::Oversize { len: payload_len, max: max_payload });
    }
    Ok(FrameHeader { frame_type, payload_len, crc })
}

/// The CRC a frame of this type/length/payload must carry.
pub fn frame_crc(frame_type: FrameType, payload: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(&[frame_type as u8]);
    c.update(&(payload.len() as u32).to_le_bytes());
    c.update(payload);
    c.finish()
}

/// Check a received payload against its header's CRC.
///
/// The CRC input uses the header's *transmitted* length field, not
/// `payload.len()`: a reader that truncated or padded the payload for
/// any reason must still fail verification if the wire length was
/// damaged.
pub fn verify_frame_crc(header: &FrameHeader, payload: &[u8]) -> Result<(), WireError> {
    let mut c = Crc32::new();
    c.update(&[header.frame_type as u8]);
    c.update(&header.payload_len.to_le_bytes());
    c.update(payload);
    let got = c.finish();
    if got != header.crc {
        return Err(WireError::Crc { expected: header.crc, got });
    }
    Ok(())
}

/// Encode a frame (header + CRC + payload) into `out`.
pub fn encode_frame(frame_type: FrameType, payload: &[u8], out: &mut Vec<u8>) {
    out.push(frame_type as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(frame_type, payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encode the v2 client hello for `config`, resuming `token` (0 = new
/// session).
pub fn encode_hello(config: &str, token: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + config.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(config.len() as u16).to_le_bytes());
    out.extend_from_slice(config.as_bytes());
    out.extend_from_slice(&token.to_le_bytes());
    out
}

/// Encode a legacy v1 hello (no resume token) — used by the
/// version-mismatch regression tests to prove a v1 client gets a clean
/// versioned rejection.
pub fn encode_hello_v1(config: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + config.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION_V1.to_le_bytes());
    out.extend_from_slice(&(config.len() as u16).to_le_bytes());
    out.extend_from_slice(config.as_bytes());
    out
}

/// Encode the server's hello reply for a non-OK status. The shape of
/// this reply is version-invariant, so clients of *any* protocol
/// version decode it cleanly.
pub fn encode_hello_reply(status: u8, detail: &str) -> Vec<u8> {
    debug_assert_ne!(status, STATUS_OK, "OK replies carry a token trailer");
    let mut out = Vec::with_capacity(9 + detail.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(status);
    out.extend_from_slice(&(detail.len() as u16).to_le_bytes());
    out.extend_from_slice(detail.as_bytes());
    out
}

/// Encode the server's accepting hello reply: the version-invariant
/// prefix plus the v2 trailer (session token, last applied seq) and a
/// CRC over the whole reply. The trailer carries `last_acked` — the
/// value that tells a resuming client where to rewind — so unlike the
/// free-text rejection replies it MUST be integrity-protected: a
/// corrupted rewind point would silently skip or replay frames.
pub fn encode_hello_reply_ok(token: u64, last_acked: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(29);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(STATUS_OK);
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&token.to_le_bytes());
    out.extend_from_slice(&last_acked.to_le_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Render the busy-detail retry hint clause.
pub fn retry_after_detail(reason: &str, retry_after_ms: u64) -> String {
    format!("{reason}; retry_after_ms={retry_after_ms}")
}

/// Parse a `retry_after_ms=N` hint out of a `STATUS_BUSY` reply detail.
pub fn parse_retry_after_ms(detail: &str) -> Option<u64> {
    detail
        .split([';', ' ', ','])
        .filter_map(|part| part.trim().strip_prefix("retry_after_ms="))
        .find_map(|v| v.parse().ok())
}

/// Encode a `Records` payload: the sequence number followed by the
/// records.
pub fn encode_records_payload(seq: u64, instrs: &[Instr], out: &mut Vec<u8>) {
    out.extend_from_slice(&seq.to_le_bytes());
    for &i in instrs {
        trace_synth::encode_record(i, out);
    }
}

/// Decode a `Records` payload into its sequence number and
/// accesses-to-be: every record must decode, and the payload must be
/// whole records behind the seq prefix.
pub fn decode_records(payload: &[u8], out: &mut Vec<Instr>) -> Result<u64, WireError> {
    if payload.len() < SEQ_BYTES {
        return Err(WireError::BadRecords(format!(
            "payload of {} bytes is shorter than the {SEQ_BYTES}-byte seq prefix",
            payload.len()
        )));
    }
    let seq = u64::from_le_bytes(payload[..SEQ_BYTES].try_into().unwrap());
    let body = &payload[SEQ_BYTES..];
    if !body.len().is_multiple_of(RECORD_BYTES) {
        return Err(WireError::BadRecords(format!(
            "record body of {} bytes is not a multiple of the {RECORD_BYTES}-byte record size",
            body.len()
        )));
    }
    for rec in body.chunks_exact(RECORD_BYTES) {
        out.push(decode_record(rec).map_err(|e| WireError::BadRecords(e.to_string()))?);
    }
    Ok(seq)
}

/// Encode a batch summary payload (`seq` + 5 × u64 LE).
pub fn encode_summary(seq: u64, counts: [u64; 5]) -> [u8; 48] {
    let mut out = [0u8; 48];
    out[..8].copy_from_slice(&seq.to_le_bytes());
    for (i, v) in counts.into_iter().enumerate() {
        out[8 + i * 8..8 + (i + 1) * 8].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a batch summary payload into `(seq, counts)`.
pub fn decode_summary(payload: &[u8]) -> Result<(u64, [u64; 5]), WireError> {
    if payload.len() != 48 {
        return Err(WireError::BadRecords(format!(
            "summary payload is {} bytes, expected 48",
            payload.len()
        )));
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let mut vals = [0u64; 5];
    for (i, v) in vals.iter_mut().enumerate() {
        *v = u64::from_le_bytes(payload[8 + i * 8..8 + (i + 1) * 8].try_into().unwrap());
    }
    Ok((seq, vals))
}

/// Per-structure verdict counts in a final `Stats` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureVerdictsWire {
    /// Structure name ("dl1", "ul2", ...).
    pub name: String,
    /// 1-based cache level.
    pub level: u8,
    /// Probes answered by this structure.
    pub hits: u64,
    /// Probes this structure could not answer (maybe-verdicts that missed).
    pub maybe_misses: u64,
    /// Probes skipped outright on a definite-miss verdict.
    pub definite_misses: u64,
}

/// The final `Stats` frame payload.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionStatsWire {
    /// Cache accesses replayed.
    pub accesses: u64,
    /// Trace records received (memory and non-memory).
    pub records: u64,
    /// `Records` frames applied (replayed duplicates excluded).
    pub frames: u64,
    /// Total latency in cycles across all accesses.
    pub total_latency: u64,
    /// Filter occupancy: entries tracked at session end.
    pub occupancy_tracked: u64,
    /// Filter occupancy: total entry capacity.
    pub occupancy_capacity: u64,
    /// Per-structure verdict histogram.
    pub structures: Vec<StructureVerdictsWire>,
}

impl SessionStatsWire {
    /// Serialize to the wire payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.structures.len() * 48);
        for v in [
            self.accesses,
            self.records,
            self.frames,
            self.total_latency,
            self.occupancy_tracked,
            self.occupancy_capacity,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.structures.len() as u32).to_le_bytes());
        for s in &self.structures {
            out.extend_from_slice(&(s.name.len() as u16).to_le_bytes());
            out.extend_from_slice(s.name.as_bytes());
            out.push(s.level);
            for v in [s.hits, s.maybe_misses, s.definite_misses] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Deserialize from a wire payload.
    pub fn decode(payload: &[u8]) -> Result<SessionStatsWire, WireError> {
        let mut cur = Cursor { payload, pos: 0 };
        let accesses = cur.u64()?;
        let records = cur.u64()?;
        let frames = cur.u64()?;
        let total_latency = cur.u64()?;
        let occupancy_tracked = cur.u64()?;
        let occupancy_capacity = cur.u64()?;
        let count = u32::from_le_bytes(cur.take(4)?.try_into().unwrap());
        if count > 64 {
            return Err(WireError::BadRecords(format!("{count} structures in stats frame")));
        }
        let mut structures = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name_len = u16::from_le_bytes(cur.take(2)?.try_into().unwrap()) as usize;
            let name = String::from_utf8(cur.take(name_len)?.to_vec())
                .map_err(|_| WireError::BadRecords("structure name is not utf-8".to_string()))?;
            let level = cur.take(1)?[0];
            let hits = cur.u64()?;
            let maybe_misses = cur.u64()?;
            let definite_misses = cur.u64()?;
            structures.push(StructureVerdictsWire {
                name,
                level,
                hits,
                maybe_misses,
                definite_misses,
            });
        }
        Ok(SessionStatsWire {
            accesses,
            records,
            frames,
            total_latency,
            occupancy_tracked,
            occupancy_capacity,
            structures,
        })
    }
}

/// Bounds-checked reader over a stats payload.
struct Cursor<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.payload.len())
            .ok_or_else(|| WireError::BadRecords("stats payload truncated".to_string()))?;
        let slice = &self.payload[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Sanity anchor for the CRC plumbing: the checksum of an empty
/// `Finish` frame, pinned so the wire format cannot drift silently.
#[allow(dead_code)]
fn _crc_api_is_reexported() -> u32 {
    crc32(b"JSNS")
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_synth::{Instr, InstrKind};

    #[test]
    fn hello_layout_is_stable() {
        let hello = encode_hello("HMNM4", 0xDEAD_BEEF);
        assert_eq!(&hello[..4], b"JSNS");
        assert_eq!(u16::from_le_bytes([hello[4], hello[5]]), VERSION);
        assert_eq!(u16::from_le_bytes([hello[6], hello[7]]), 5);
        assert_eq!(&hello[8..13], b"HMNM4");
        assert_eq!(u64::from_le_bytes(hello[13..21].try_into().unwrap()), 0xDEAD_BEEF);

        let v1 = encode_hello_v1("HMNM4");
        assert_eq!(u16::from_le_bytes([v1[4], v1[5]]), VERSION_V1);
        assert_eq!(v1.len(), 13, "v1 hello has no token");
    }

    #[test]
    fn hello_replies_share_a_version_invariant_prefix() {
        let rejected = encode_hello_reply(STATUS_REJECTED, "nope");
        let ok = encode_hello_reply_ok(77, 3);
        // Both replies decode identically through byte 8 (magic,
        // version, status, detail_len) — the property that makes
        // version mismatches clean in both directions.
        assert_eq!(&rejected[..4], &MAGIC);
        assert_eq!(&ok[..4], &MAGIC);
        assert_eq!(rejected[6], STATUS_REJECTED);
        assert_eq!(ok[6], STATUS_OK);
        assert_eq!(u16::from_le_bytes([ok[7], ok[8]]), 0, "OK reply has empty detail");
        assert_eq!(u64::from_le_bytes(ok[9..17].try_into().unwrap()), 77);
        assert_eq!(u64::from_le_bytes(ok[17..25].try_into().unwrap()), 3);
        // The OK trailer is CRC-protected: a flipped bit anywhere in
        // the reply must be detectable.
        assert_eq!(u32::from_le_bytes(ok[25..29].try_into().unwrap()), crc32(&ok[..25]));
        for bit in 0..25 * 8 {
            let mut corrupt = ok.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(
                u32::from_le_bytes(corrupt[25..29].try_into().unwrap()),
                crc32(&corrupt[..25]),
                "flip at bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn retry_after_hint_round_trips() {
        let detail = retry_after_detail("server shedding load", 250);
        assert_eq!(parse_retry_after_ms(&detail), Some(250));
        assert_eq!(parse_retry_after_ms("no hint here"), None);
        assert_eq!(parse_retry_after_ms("busy; retry_after_ms=0"), Some(0));
    }

    #[test]
    fn frame_header_round_trips_and_bounds() {
        let mut buf = Vec::new();
        encode_frame(FrameType::Records, &[7u8; 40], &mut buf);
        let header: [u8; FRAME_HEADER_BYTES] = buf[..FRAME_HEADER_BYTES].try_into().unwrap();
        let parsed = parse_frame_header(&header, MAX_FRAME_BYTES).unwrap();
        assert_eq!(parsed.frame_type, FrameType::Records);
        assert_eq!(parsed.payload_len, 40);
        verify_frame_crc(&parsed, &buf[FRAME_HEADER_BYTES..]).unwrap();

        // Oversize length field is rejected before any allocation.
        let huge = [1u8, 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0];
        assert!(matches!(
            parse_frame_header(&huge, MAX_FRAME_BYTES),
            Err(WireError::Oversize { .. })
        ));

        // Unknown type byte.
        let bad = [99u8, 0, 0, 0, 0, 0, 0, 0, 0];
        assert!(matches!(
            parse_frame_header(&bad, MAX_FRAME_BYTES),
            Err(WireError::BadFrameType(99))
        ));
    }

    #[test]
    fn any_single_bit_corruption_fails_the_crc() {
        let mut buf = Vec::new();
        let mut payload = Vec::new();
        let rec =
            Instr { pc: 0x400000, kind: InstrKind::Load { addr: 0xdead_beef }, src1: 1, src2: 0 };
        encode_records_payload(1, &[rec], &mut payload);
        encode_frame(FrameType::Records, &payload, &mut buf);

        for bit in 0..buf.len() * 8 {
            let mut corrupt = buf.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            let Ok(header) =
                parse_frame_header(&corrupt[..FRAME_HEADER_BYTES].try_into().unwrap(), u32::MAX)
            else {
                continue; // corrupted type byte: rejected even earlier
            };
            // A corrupted length changes how many payload bytes the
            // reader would consume; here we verify against the bytes
            // that were actually sent, as the reader does.
            let end = (FRAME_HEADER_BYTES + header.payload_len as usize).min(corrupt.len());
            assert!(
                verify_frame_crc(&header, &corrupt[FRAME_HEADER_BYTES..end]).is_err(),
                "bit flip at {bit} went undetected"
            );
        }
    }

    #[test]
    fn records_payload_round_trips_with_seq() {
        let instrs = [
            Instr { pc: 0x400000, kind: InstrKind::Load { addr: 0xdead_beef }, src1: 1, src2: 0 },
            Instr { pc: 0x400004, kind: InstrKind::Store { addr: 0x1234 }, src1: 0, src2: 3 },
            Instr { pc: 0x400008, kind: InstrKind::Op { latency: 3 }, src1: 2, src2: 2 },
        ];
        let mut payload = Vec::new();
        encode_records_payload(41, &instrs, &mut payload);
        let mut back = Vec::new();
        assert_eq!(decode_records(&payload, &mut back).unwrap(), 41);
        assert_eq!(back, instrs);

        // A ragged payload is rejected.
        let mut ragged = Vec::new();
        assert!(matches!(
            decode_records(&payload[..payload.len() - 1], &mut ragged),
            Err(WireError::BadRecords(_))
        ));
        // A payload shorter than the seq prefix is rejected.
        assert!(matches!(
            decode_records(&payload[..7], &mut ragged),
            Err(WireError::BadRecords(_))
        ));
    }

    #[test]
    fn summary_round_trips() {
        let wire = encode_summary(9, [10, 2000, 7, 3, 5]);
        assert_eq!(decode_summary(&wire).unwrap(), (9, [10, 2000, 7, 3, 5]));
        assert!(decode_summary(&wire[..47]).is_err());
    }

    #[test]
    fn session_stats_round_trip() {
        let stats = SessionStatsWire {
            accesses: 1000,
            records: 4000,
            frames: 4,
            total_latency: 123456,
            occupancy_tracked: 37,
            occupancy_capacity: 4096,
            structures: vec![
                StructureVerdictsWire {
                    name: "dl1".to_string(),
                    level: 1,
                    hits: 900,
                    maybe_misses: 100,
                    definite_misses: 0,
                },
                StructureVerdictsWire {
                    name: "ul2".to_string(),
                    level: 2,
                    hits: 60,
                    maybe_misses: 10,
                    definite_misses: 30,
                },
            ],
        };
        let wire = stats.encode();
        assert_eq!(SessionStatsWire::decode(&wire).unwrap(), stats);
        // Truncation anywhere inside must error, never panic.
        for cut in 0..wire.len() {
            assert!(SessionStatsWire::decode(&wire[..cut]).is_err(), "cut at {cut}");
        }
    }
}
