//! The `jsn serve` wire protocol.
//!
//! A session is one connection. The client opens with a **hello**:
//!
//! ```text
//! magic "JSNS" (4) | version u16 LE | config_len u16 LE | config utf-8
//! ```
//!
//! where `config` is a filter preset label: `baseline`, `perfect`, or any
//! label accepted by `MnmConfig::parse` (`HMNM4`, `TMNM_12x1`, ...). The
//! server answers with the same magic + version, a status byte
//! (0 = accepted) and a u16-length-prefixed utf-8 detail string.
//!
//! After an accepted hello, both directions speak **frames**:
//!
//! ```text
//! type u8 | payload_len u32 LE | payload
//! ```
//!
//! | type | direction | payload |
//! |------|-----------|---------|
//! | [`FrameType::Records`] | client → server | `k` × 20-byte trace records (the `trace-synth` file encoding, sans file header) |
//! | [`FrameType::Finish`]  | client → server | empty |
//! | [`FrameType::Summary`] | server → client | 5 × u64 LE: accesses, total latency, L1 hits, misses, bypassed probes |
//! | [`FrameType::Stats`]   | server → client | final session stats, see [`SessionStatsWire`] |
//! | [`FrameType::Error`]   | server → client | utf-8 message; the connection closes after it |
//!
//! Every `Records` frame is answered by exactly one `Summary`; `Finish`
//! is answered by one `Stats`. Payload lengths are bounded
//! ([`MAX_FRAME_BYTES`] by default, server-configurable) so a hostile or
//! corrupt length field cannot make the server allocate unbounded memory.
//!
//! All decode paths return [`WireError`] — never panic — because each
//! byte may come from a torn write, a short read or a malicious peer.

use trace_synth::{decode_record, Instr, RECORD_BYTES};

/// Connection magic: first four bytes of every hello.
pub const MAGIC: [u8; 4] = *b"JSNS";

/// Protocol version spoken by this build.
pub const VERSION: u16 = 1;

/// Frame header size: type byte + u32 payload length.
pub const FRAME_HEADER_BYTES: usize = 5;

/// Default upper bound on a frame payload. 64 KiB holds ~3276 records,
/// far above the useful batch size for `process_many`.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024;

/// Upper bound on the hello config-label length.
pub const MAX_CONFIG_BYTES: usize = 128;

/// Hello status byte: session accepted.
pub const STATUS_OK: u8 = 0;
/// Hello status byte: server at its session cap.
pub const STATUS_BUSY: u8 = 1;
/// Hello status byte: bad config label / version / magic.
pub const STATUS_REJECTED: u8 = 2;

/// Frame type tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client → server: a batch of 20-byte trace records.
    Records = 1,
    /// Client → server: end of stream, request final stats.
    Finish = 2,
    /// Server → client: batch summary for one `Records` frame.
    Summary = 3,
    /// Server → client: final session statistics.
    Stats = 4,
    /// Server → client: terminal error description.
    Error = 5,
}

impl FrameType {
    /// Decode a frame-type byte.
    pub fn from_u8(v: u8) -> Option<FrameType> {
        match v {
            1 => Some(FrameType::Records),
            2 => Some(FrameType::Finish),
            3 => Some(FrameType::Summary),
            4 => Some(FrameType::Stats),
            5 => Some(FrameType::Error),
            _ => None,
        }
    }
}

/// Everything that can go wrong reading the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// The peer closed mid-frame or mid-hello: a torn write.
    Torn {
        /// What was being read when the stream ended.
        context: &'static str,
    },
    /// The peer made no progress for longer than the stall budget.
    Stalled,
    /// The server is shutting down.
    Shutdown,
    /// Underlying socket error.
    Io(String),
    /// Hello did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// Hello carried an unsupported version.
    BadVersion {
        /// The version the peer requested.
        got: u16,
    },
    /// Hello config label was too long or not utf-8.
    BadConfig(String),
    /// Unknown frame-type byte.
    BadFrameType(u8),
    /// Declared payload length exceeds the negotiated bound.
    Oversize {
        /// Declared payload length.
        len: u32,
        /// The server's bound.
        max: u32,
    },
    /// A `Records` payload was not a multiple of the record size, or a
    /// record failed to decode.
    BadRecords(String),
    /// The peer sent a frame type that is invalid in its direction or
    /// session state.
    Unexpected(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Torn { context } => {
                write!(f, "connection closed mid-{context} (torn frame)")
            }
            WireError::Stalled => write!(f, "peer stalled past the read budget"),
            WireError::Shutdown => write!(f, "server shutting down"),
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}, expected \"JSNS\""),
            WireError::BadVersion { got } => {
                write!(f, "unsupported protocol version {got}, this server speaks {VERSION}")
            }
            WireError::BadConfig(e) => write!(f, "bad hello config: {e}"),
            WireError::BadFrameType(t) => write!(f, "unknown frame type {t}"),
            WireError::Oversize { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte bound")
            }
            WireError::BadRecords(e) => write!(f, "bad records payload: {e}"),
            WireError::Unexpected(what) => write!(f, "unexpected frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The frame type.
    pub frame_type: FrameType,
    /// Payload length in bytes.
    pub payload_len: u32,
}

/// Parse a frame header from its [`FRAME_HEADER_BYTES`] wire bytes,
/// enforcing the payload bound.
pub fn parse_frame_header(
    bytes: &[u8; FRAME_HEADER_BYTES],
    max_payload: u32,
) -> Result<FrameHeader, WireError> {
    let frame_type = FrameType::from_u8(bytes[0]).ok_or(WireError::BadFrameType(bytes[0]))?;
    let payload_len = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]);
    if payload_len > max_payload {
        return Err(WireError::Oversize { len: payload_len, max: max_payload });
    }
    Ok(FrameHeader { frame_type, payload_len })
}

/// Encode a frame (header + payload) into `out`.
pub fn encode_frame(frame_type: FrameType, payload: &[u8], out: &mut Vec<u8>) {
    out.push(frame_type as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encode the client hello for `config`.
pub fn encode_hello(config: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + config.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(config.len() as u16).to_le_bytes());
    out.extend_from_slice(config.as_bytes());
    out
}

/// Encode the server's hello reply.
pub fn encode_hello_reply(status: u8, detail: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + detail.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(status);
    out.extend_from_slice(&(detail.len() as u16).to_le_bytes());
    out.extend_from_slice(detail.as_bytes());
    out
}

/// Decode a `Records` payload into accesses-to-be: every record must
/// decode, and the payload must be whole records.
pub fn decode_records(payload: &[u8], out: &mut Vec<Instr>) -> Result<(), WireError> {
    if !payload.len().is_multiple_of(RECORD_BYTES) {
        return Err(WireError::BadRecords(format!(
            "payload of {} bytes is not a multiple of the {RECORD_BYTES}-byte record size",
            payload.len()
        )));
    }
    for rec in payload.chunks_exact(RECORD_BYTES) {
        out.push(decode_record(rec).map_err(|e| WireError::BadRecords(e.to_string()))?);
    }
    Ok(())
}

/// Encode a batch summary payload (5 × u64 LE).
pub fn encode_summary(
    accesses: u64,
    total_latency: u64,
    l1_hits: u64,
    misses: u64,
    bypassed: u64,
) -> [u8; 40] {
    let mut out = [0u8; 40];
    for (i, v) in [accesses, total_latency, l1_hits, misses, bypassed].into_iter().enumerate() {
        out[i * 8..(i + 1) * 8].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a batch summary payload.
pub fn decode_summary(payload: &[u8]) -> Result<[u64; 5], WireError> {
    if payload.len() != 40 {
        return Err(WireError::BadRecords(format!(
            "summary payload is {} bytes, expected 40",
            payload.len()
        )));
    }
    let mut vals = [0u64; 5];
    for (i, v) in vals.iter_mut().enumerate() {
        *v = u64::from_le_bytes(payload[i * 8..(i + 1) * 8].try_into().unwrap());
    }
    Ok(vals)
}

/// Per-structure verdict counts in a final `Stats` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureVerdictsWire {
    /// Structure name ("dl1", "ul2", ...).
    pub name: String,
    /// 1-based cache level.
    pub level: u8,
    /// Probes answered by this structure.
    pub hits: u64,
    /// Probes this structure could not answer (maybe-verdicts that missed).
    pub maybe_misses: u64,
    /// Probes skipped outright on a definite-miss verdict.
    pub definite_misses: u64,
}

/// The final `Stats` frame payload.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionStatsWire {
    /// Cache accesses replayed.
    pub accesses: u64,
    /// Trace records received (memory and non-memory).
    pub records: u64,
    /// `Records` frames received.
    pub frames: u64,
    /// Total latency in cycles across all accesses.
    pub total_latency: u64,
    /// Filter occupancy: entries tracked at session end.
    pub occupancy_tracked: u64,
    /// Filter occupancy: total entry capacity.
    pub occupancy_capacity: u64,
    /// Per-structure verdict histogram.
    pub structures: Vec<StructureVerdictsWire>,
}

impl SessionStatsWire {
    /// Serialize to the wire payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.structures.len() * 48);
        for v in [
            self.accesses,
            self.records,
            self.frames,
            self.total_latency,
            self.occupancy_tracked,
            self.occupancy_capacity,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.structures.len() as u32).to_le_bytes());
        for s in &self.structures {
            out.extend_from_slice(&(s.name.len() as u16).to_le_bytes());
            out.extend_from_slice(s.name.as_bytes());
            out.push(s.level);
            for v in [s.hits, s.maybe_misses, s.definite_misses] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Deserialize from a wire payload.
    pub fn decode(payload: &[u8]) -> Result<SessionStatsWire, WireError> {
        let mut cur = Cursor { payload, pos: 0 };
        let accesses = cur.u64()?;
        let records = cur.u64()?;
        let frames = cur.u64()?;
        let total_latency = cur.u64()?;
        let occupancy_tracked = cur.u64()?;
        let occupancy_capacity = cur.u64()?;
        let count = u32::from_le_bytes(cur.take(4)?.try_into().unwrap());
        if count > 64 {
            return Err(WireError::BadRecords(format!("{count} structures in stats frame")));
        }
        let mut structures = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name_len = u16::from_le_bytes(cur.take(2)?.try_into().unwrap()) as usize;
            let name = String::from_utf8(cur.take(name_len)?.to_vec())
                .map_err(|_| WireError::BadRecords("structure name is not utf-8".to_string()))?;
            let level = cur.take(1)?[0];
            let hits = cur.u64()?;
            let maybe_misses = cur.u64()?;
            let definite_misses = cur.u64()?;
            structures.push(StructureVerdictsWire {
                name,
                level,
                hits,
                maybe_misses,
                definite_misses,
            });
        }
        Ok(SessionStatsWire {
            accesses,
            records,
            frames,
            total_latency,
            occupancy_tracked,
            occupancy_capacity,
            structures,
        })
    }
}

/// Bounds-checked reader over a stats payload.
struct Cursor<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.payload.len())
            .ok_or_else(|| WireError::BadRecords("stats payload truncated".to_string()))?;
        let slice = &self.payload[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_synth::{encode_record, Instr, InstrKind};

    #[test]
    fn hello_layout_is_stable() {
        let hello = encode_hello("HMNM4");
        assert_eq!(&hello[..4], b"JSNS");
        assert_eq!(u16::from_le_bytes([hello[4], hello[5]]), VERSION);
        assert_eq!(u16::from_le_bytes([hello[6], hello[7]]), 5);
        assert_eq!(&hello[8..], b"HMNM4");
    }

    #[test]
    fn frame_header_round_trips_and_bounds() {
        let mut buf = Vec::new();
        encode_frame(FrameType::Records, &[0u8; 40], &mut buf);
        let header: [u8; FRAME_HEADER_BYTES] = buf[..FRAME_HEADER_BYTES].try_into().unwrap();
        let parsed = parse_frame_header(&header, MAX_FRAME_BYTES).unwrap();
        assert_eq!(parsed.frame_type, FrameType::Records);
        assert_eq!(parsed.payload_len, 40);

        // Oversize length field is rejected before any allocation.
        let huge = [1u8, 0xFF, 0xFF, 0xFF, 0x7F];
        assert!(matches!(
            parse_frame_header(&huge, MAX_FRAME_BYTES),
            Err(WireError::Oversize { .. })
        ));

        // Unknown type byte.
        let bad = [99u8, 0, 0, 0, 0];
        assert!(matches!(
            parse_frame_header(&bad, MAX_FRAME_BYTES),
            Err(WireError::BadFrameType(99))
        ));
    }

    #[test]
    fn records_payload_round_trips() {
        let instrs = [
            Instr { pc: 0x400000, kind: InstrKind::Load { addr: 0xdead_beef }, src1: 1, src2: 0 },
            Instr { pc: 0x400004, kind: InstrKind::Store { addr: 0x1234 }, src1: 0, src2: 3 },
            Instr { pc: 0x400008, kind: InstrKind::Op { latency: 3 }, src1: 2, src2: 2 },
        ];
        let mut payload = Vec::new();
        for &i in &instrs {
            encode_record(i, &mut payload);
        }
        let mut back = Vec::new();
        decode_records(&payload, &mut back).unwrap();
        assert_eq!(back, instrs);

        // A ragged payload is rejected.
        let mut ragged = Vec::new();
        assert!(matches!(
            decode_records(&payload[..payload.len() - 1], &mut ragged),
            Err(WireError::BadRecords(_))
        ));
    }

    #[test]
    fn summary_round_trips() {
        let wire = encode_summary(10, 2000, 7, 3, 5);
        assert_eq!(decode_summary(&wire).unwrap(), [10, 2000, 7, 3, 5]);
        assert!(decode_summary(&wire[..39]).is_err());
    }

    #[test]
    fn session_stats_round_trip() {
        let stats = SessionStatsWire {
            accesses: 1000,
            records: 4000,
            frames: 4,
            total_latency: 123456,
            occupancy_tracked: 37,
            occupancy_capacity: 4096,
            structures: vec![
                StructureVerdictsWire {
                    name: "dl1".to_string(),
                    level: 1,
                    hits: 900,
                    maybe_misses: 100,
                    definite_misses: 0,
                },
                StructureVerdictsWire {
                    name: "ul2".to_string(),
                    level: 2,
                    hits: 60,
                    maybe_misses: 10,
                    definite_misses: 30,
                },
            ],
        };
        let wire = stats.encode();
        assert_eq!(SessionStatsWire::decode(&wire).unwrap(), stats);
        // Truncation anywhere inside must error, never panic.
        for cut in 0..wire.len() {
            assert!(SessionStatsWire::decode(&wire[..cut]).is_err(), "cut at {cut}");
        }
    }
}
