//! Live server metrics: lock-free global counters, a fixed-bucket
//! latency histogram, per-structure verdict counters and per-session
//! gauges, rendered as a Prometheus-style text page.
//!
//! The registry is shared by every session thread through an `Arc`; all
//! hot-path updates are relaxed atomic adds. The only lock guards the
//! per-session gauge table, touched once per frame — and it recovers
//! from poisoning rather than cascading a panic, like the experiment
//! telemetry recorder.
//!
//! The global counters are each cache-line padded ([`CachePadded`]):
//! unpadded, all twelve `AtomicU64`s share two cache lines, so e.g.
//! `bytes_in` adds from one session thread steal line ownership from
//! another thread bumping `records_in` — counters that are logically
//! independent false-share. Measured alongside the shard SPSC work:
//! free on a single-core host (same instruction stream, just spaced
//! loads), and on multi-core hosts it removes the cross-counter
//! coherence traffic entirely. The `VerdictCell` triples stay unpadded
//! on purpose — a frame updates hits/maybe/definite together, so
//! keeping each triple on one line is the batching win, not a hazard.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use cache_sim::{CachePadded, Hierarchy};

/// Upper bounds (microseconds) of the request-latency histogram buckets.
/// The final implicit bucket is `+Inf`.
pub const LATENCY_BOUNDS_US: [u64; 16] =
    [1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 250_000, 1_000_000];

/// A fixed-bucket histogram of request service times.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    /// Record one observation of `us` microseconds.
    pub fn observe(&self, us: u64) {
        let idx = LATENCY_BOUNDS_US.partition_point(|&b| b < us);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The upper bound (µs) of the bucket containing the `p`-th
    /// percentile observation, or 0 with no data. `p` in `0.0..=1.0`.
    pub fn percentile_us(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return LATENCY_BOUNDS_US.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    fn render(&self, out: &mut String) {
        use std::fmt::Write;
        let mut cumulative = 0u64;
        for (i, &bound) in LATENCY_BOUNDS_US.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "jsn_request_latency_us_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let total = self.count();
        let _ = writeln!(out, "jsn_request_latency_us_bucket{{le=\"+Inf\"}} {total}");
        let _ = writeln!(out, "jsn_request_latency_us_sum {}", self.sum_us.load(Ordering::Relaxed));
        let _ = writeln!(out, "jsn_request_latency_us_count {total}");
        let _ = writeln!(out, "jsn_request_latency_us_p50 {}", self.percentile_us(0.50));
        let _ = writeln!(out, "jsn_request_latency_us_p99 {}", self.percentile_us(0.99));
    }
}

/// Global verdict counters for one cache structure.
#[derive(Debug)]
pub struct VerdictCell {
    /// Structure name ("dl1", "ul2", ...).
    pub name: String,
    /// 1-based cache level.
    pub level: u8,
    hits: AtomicU64,
    maybe_misses: AtomicU64,
    definite_misses: AtomicU64,
}

/// Live gauges for one active session.
#[derive(Debug, Clone, Default)]
pub struct SessionGauge {
    /// The filter preset the session requested.
    pub config: String,
    /// Filter entries currently tracked.
    pub occupancy_tracked: u64,
    /// Filter entry capacity.
    pub occupancy_capacity: u64,
    /// Accesses replayed by the session so far.
    pub accesses: u64,
}

/// The shared metrics registry.
#[derive(Debug)]
pub struct Registry {
    started: Instant,
    /// Sessions whose hello was accepted.
    pub sessions_accepted: CachePadded<AtomicU64>,
    /// Sessions turned away (session cap, bad hello).
    pub sessions_rejected: CachePadded<AtomicU64>,
    /// Sessions evicted for stalling past the read budget.
    pub sessions_evicted: CachePadded<AtomicU64>,
    /// Sessions that finished cleanly (`Finish` acknowledged).
    pub sessions_completed: CachePadded<AtomicU64>,
    /// Sessions that ended on a protocol or socket error.
    pub sessions_failed: CachePadded<AtomicU64>,
    /// Sessions currently live.
    pub sessions_active: CachePadded<AtomicU64>,
    /// Hellos shed by admission control (queue-depth watermark).
    pub sessions_shed: CachePadded<AtomicU64>,
    /// Sessions parked for resume after a retryable wire failure.
    pub sessions_parked: CachePadded<AtomicU64>,
    /// Parked sessions picked back up by a reconnecting client.
    pub sessions_resumed: CachePadded<AtomicU64>,
    /// Parked sessions dropped (resume window expired or table full).
    pub sessions_expired: CachePadded<AtomicU64>,
    /// Frames rejected for a CRC mismatch (wire corruption detected).
    pub crc_errors: CachePadded<AtomicU64>,
    /// `Records` frames applied to a session (first delivery).
    pub frames_applied: CachePadded<AtomicU64>,
    /// Duplicate `Records` frames re-acked without replay.
    pub frames_replayed: CachePadded<AtomicU64>,
    /// Frames currently queued between readers and workers (gauge).
    pub queue_depth: CachePadded<AtomicU64>,
    /// Bytes read off session sockets.
    pub bytes_in: CachePadded<AtomicU64>,
    /// `Records` frames processed.
    pub frames_in: CachePadded<AtomicU64>,
    /// Trace records processed.
    pub records_in: CachePadded<AtomicU64>,
    /// Cache accesses replayed.
    pub accesses: CachePadded<AtomicU64>,
    /// Frames or hellos that failed to decode.
    pub protocol_errors: CachePadded<AtomicU64>,
    /// `/metrics` scrapes served.
    pub scrapes: CachePadded<AtomicU64>,
    /// Per-frame service latency (decode + replay + summary write).
    pub latency: LatencyHistogram,
    verdicts: Vec<VerdictCell>,
    sessions: Mutex<BTreeMap<u64, SessionGauge>>,
}

fn lock_sessions(
    m: &Mutex<BTreeMap<u64, SessionGauge>>,
) -> std::sync::MutexGuard<'_, BTreeMap<u64, SessionGauge>> {
    // A panicking session thread must not wedge every future scrape:
    // recover the map from a poisoned lock (gauges are overwritten
    // wholesale each frame, so torn state self-heals).
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    /// Build a registry with one verdict cell per structure of
    /// `hierarchy` (all sessions share the hierarchy shape).
    pub fn new(hierarchy: &Hierarchy) -> Registry {
        let verdicts = hierarchy
            .structures()
            .iter()
            .map(|info| VerdictCell {
                name: info.name.clone(),
                level: info.level,
                hits: AtomicU64::new(0),
                maybe_misses: AtomicU64::new(0),
                definite_misses: AtomicU64::new(0),
            })
            .collect();
        Registry {
            started: Instant::now(),
            sessions_accepted: CachePadded::new(AtomicU64::new(0)),
            sessions_rejected: CachePadded::new(AtomicU64::new(0)),
            sessions_evicted: CachePadded::new(AtomicU64::new(0)),
            sessions_completed: CachePadded::new(AtomicU64::new(0)),
            sessions_failed: CachePadded::new(AtomicU64::new(0)),
            sessions_active: CachePadded::new(AtomicU64::new(0)),
            sessions_shed: CachePadded::new(AtomicU64::new(0)),
            sessions_parked: CachePadded::new(AtomicU64::new(0)),
            sessions_resumed: CachePadded::new(AtomicU64::new(0)),
            sessions_expired: CachePadded::new(AtomicU64::new(0)),
            crc_errors: CachePadded::new(AtomicU64::new(0)),
            frames_applied: CachePadded::new(AtomicU64::new(0)),
            frames_replayed: CachePadded::new(AtomicU64::new(0)),
            queue_depth: CachePadded::new(AtomicU64::new(0)),
            bytes_in: CachePadded::new(AtomicU64::new(0)),
            frames_in: CachePadded::new(AtomicU64::new(0)),
            records_in: CachePadded::new(AtomicU64::new(0)),
            accesses: CachePadded::new(AtomicU64::new(0)),
            protocol_errors: CachePadded::new(AtomicU64::new(0)),
            scrapes: CachePadded::new(AtomicU64::new(0)),
            latency: LatencyHistogram::default(),
            verdicts,
            sessions: Mutex::new(BTreeMap::new()),
        }
    }

    /// Add per-structure verdict deltas (one triple per structure, in
    /// hierarchy order): (hits, maybe-misses, definite-misses).
    pub fn add_verdicts(&self, deltas: &[(u64, u64, u64)]) {
        for (cell, &(h, m, d)) in self.verdicts.iter().zip(deltas) {
            cell.hits.fetch_add(h, Ordering::Relaxed);
            cell.maybe_misses.fetch_add(m, Ordering::Relaxed);
            cell.definite_misses.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Read one structure's verdict counters: (hits, maybe, definite).
    pub fn verdict_counts(&self, name: &str) -> Option<(u64, u64, u64)> {
        self.verdicts.iter().find(|c| c.name == name).map(|c| {
            (
                c.hits.load(Ordering::Relaxed),
                c.maybe_misses.load(Ordering::Relaxed),
                c.definite_misses.load(Ordering::Relaxed),
            )
        })
    }

    /// Install or refresh the live gauges for session `id`.
    pub fn set_session_gauge(&self, id: u64, gauge: SessionGauge) {
        lock_sessions(&self.sessions).insert(id, gauge);
    }

    /// Drop session `id`'s gauges (on session end).
    pub fn remove_session_gauge(&self, id: u64) {
        lock_sessions(&self.sessions).remove(&id);
    }

    /// Number of sessions with live gauges (for tests: proves slots are
    /// not leaked).
    pub fn gauge_count(&self) -> usize {
        lock_sessions(&self.sessions).len()
    }

    /// Render the scrape page.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(4096);
        let _ = writeln!(out, "# jsn serve metrics");
        let _ = writeln!(out, "jsn_uptime_seconds {:.3}", self.started.elapsed().as_secs_f64());
        for (name, v) in [
            ("jsn_sessions_accepted_total", &self.sessions_accepted),
            ("jsn_sessions_rejected_total", &self.sessions_rejected),
            ("jsn_sessions_evicted_total", &self.sessions_evicted),
            ("jsn_sessions_completed_total", &self.sessions_completed),
            ("jsn_sessions_failed_total", &self.sessions_failed),
            ("jsn_sessions_active", &self.sessions_active),
            ("jsn_sessions_shed_total", &self.sessions_shed),
            ("jsn_sessions_parked", &self.sessions_parked),
            ("jsn_sessions_resumed_total", &self.sessions_resumed),
            ("jsn_sessions_expired_total", &self.sessions_expired),
            ("jsn_crc_errors_total", &self.crc_errors),
            ("jsn_frames_applied_total", &self.frames_applied),
            ("jsn_frames_replayed_total", &self.frames_replayed),
            ("jsn_queue_depth", &self.queue_depth),
            ("jsn_bytes_in_total", &self.bytes_in),
            ("jsn_frames_in_total", &self.frames_in),
            ("jsn_records_in_total", &self.records_in),
            ("jsn_accesses_total", &self.accesses),
            ("jsn_protocol_errors_total", &self.protocol_errors),
            ("jsn_scrapes_total", &self.scrapes),
        ] {
            let _ = writeln!(out, "{name} {}", v.load(Ordering::Relaxed));
        }
        self.latency.render(&mut out);
        for cell in &self.verdicts {
            for (verdict, counter) in [
                ("hit", &cell.hits),
                ("maybe_miss", &cell.maybe_misses),
                ("definite_miss", &cell.definite_misses),
            ] {
                let _ = writeln!(
                    out,
                    "jsn_verdict_total{{structure=\"{}\",level=\"{}\",verdict=\"{verdict}\"}} {}",
                    cell.name,
                    cell.level,
                    counter.load(Ordering::Relaxed)
                );
            }
        }
        for (id, g) in lock_sessions(&self.sessions).iter() {
            let _ = writeln!(
                out,
                "jsn_session_occupancy_tracked{{session=\"{id}\",config=\"{}\"}} {}",
                g.config, g.occupancy_tracked
            );
            let _ = writeln!(
                out,
                "jsn_session_occupancy_capacity{{session=\"{id}\",config=\"{}\"}} {}",
                g.config, g.occupancy_capacity
            );
            let _ = writeln!(
                out,
                "jsn_session_accesses{{session=\"{id}\",config=\"{}\"}} {}",
                g.config, g.accesses
            );
        }
        out
    }
}

/// Parse one counter value back out of a rendered scrape page. `line`
/// is the full metric name including any `{label="..."}` suffix.
pub fn scrape_value(page: &str, metric: &str) -> Option<u64> {
    page.lines().find_map(|l| {
        let rest = l.strip_prefix(metric)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse::<u64>().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::HierarchyConfig;

    #[test]
    fn histogram_percentiles_are_monotone_and_bounded() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile_us(0.5), 0);
        for us in [3, 3, 3, 8, 8, 40, 40, 900, 900, 30_000] {
            h.observe(us);
        }
        let p50 = h.percentile_us(0.50);
        let p99 = h.percentile_us(0.99);
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        // 3 µs observations land in the le=5 bucket.
        assert_eq!(h.percentile_us(0.1), 5);
        // The largest observation lands in le=50000.
        assert_eq!(p99, 50_000);
    }

    #[test]
    fn overflow_bucket_catches_huge_latencies() {
        let h = LatencyHistogram::default();
        h.observe(10_000_000);
        assert_eq!(h.percentile_us(0.99), u64::MAX);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn render_and_scrape_round_trip() {
        let hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let reg = Registry::new(&hier);
        reg.sessions_accepted.fetch_add(3, Ordering::Relaxed);
        reg.bytes_in.fetch_add(1024, Ordering::Relaxed);
        let deltas: Vec<(u64, u64, u64)> = hier.structures().iter().map(|_| (7, 2, 1)).collect();
        reg.add_verdicts(&deltas);
        reg.set_session_gauge(
            1,
            SessionGauge {
                config: "HMNM4".to_string(),
                occupancy_tracked: 10,
                occupancy_capacity: 100,
                accesses: 55,
            },
        );

        let page = reg.render();
        assert_eq!(scrape_value(&page, "jsn_sessions_accepted_total"), Some(3));
        assert_eq!(scrape_value(&page, "jsn_bytes_in_total"), Some(1024));
        assert_eq!(
            scrape_value(&page, "jsn_verdict_total{structure=\"dl1\",level=\"1\",verdict=\"hit\"}"),
            Some(7)
        );
        assert_eq!(
            scrape_value(&page, "jsn_session_occupancy_tracked{session=\"1\",config=\"HMNM4\"}"),
            Some(10)
        );

        reg.remove_session_gauge(1);
        assert_eq!(reg.gauge_count(), 0);
        assert!(!reg.render().contains("jsn_session_occupancy_tracked"));
    }

    #[test]
    fn gauge_lock_recovers_from_poison() {
        let hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let reg = std::sync::Arc::new(Registry::new(&hier));
        let poisoner = std::sync::Arc::clone(&reg);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.sessions.lock().unwrap();
            panic!("poison the gauge lock");
        })
        .join();
        assert!(reg.sessions.lock().is_err(), "lock must actually be poisoned");
        reg.set_session_gauge(9, SessionGauge::default());
        assert_eq!(reg.gauge_count(), 1);
        assert!(reg.render().contains("session=\"9\""));
    }
}
