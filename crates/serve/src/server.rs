//! The `jsn serve` daemon: a threaded TCP / unix-socket server that
//! runs one [`SessionCore`] per *session* — which, since protocol v2,
//! may span several connections.
//!
//! ## Threading and back-pressure
//!
//! Each accepted session gets two threads: a **reader** that pulls
//! frames off the socket and a **worker** that replays them. They are
//! joined by a *bounded* [`std::sync::mpsc::sync_channel`]: when the
//! worker falls behind, the channel fills, the reader blocks, the
//! kernel receive buffer fills, and the client's writes stall — classic
//! TCP back-pressure with a hard bound on per-session buffered memory
//! (`queue_frames × max_frame_bytes` plus one in-flight frame). The
//! aggregate queued-frame count is exported as the `jsn_queue_depth`
//! gauge, and a hello arriving while the gauge is at or above
//! `shed_watermark` is **shed**: answered `STATUS_BUSY` with a
//! `retry_after_ms=` hint instead of admitted to a queue that is
//! already behind.
//!
//! Global memory is bounded by `max_sessions`: a hello past the cap is
//! answered with `STATUS_BUSY` and the connection closed.
//!
//! ## Deadlines: stall vs idle
//!
//! Two distinct read deadlines protect worker slots:
//!
//! * **stall** (`stall_timeout`) — the peer started a frame (or hello)
//!   and then made no byte progress. Always short: a wedged or
//!   maliciously slow peer.
//! * **idle** (`idle_timeout`) — the peer is between frames and simply
//!   sent nothing. May be longer: a client computing its next batch.
//!
//! Either deadline evicts the session: the slot is freed, the eviction
//! counter increments exactly once, and the session state is dropped —
//! an idle peer is indistinguishable from a dead one, so its state is
//! not worth parking.
//!
//! ## Resume and exactly-once accounting
//!
//! Every accepted session is issued a token; when a connection dies a
//! *retryable* death — reset, torn frame, CRC mismatch, corrupted
//! header — the session state (core, highest applied sequence number,
//! a bounded ring of recent summaries) is **parked** for up to
//! `resume_window`. A client reconnecting with the token gets back
//! `last_acked` in the hello reply and replays only frames after it;
//! frames at or below `last_acked` are re-acked from the summary ring
//! *without touching the replay state*. Applied and replayed frames are
//! counted separately, and the invariant
//! `frames_in == frames_applied + frames_replayed` is the
//! reconciliation check the drain snapshot (and the chaos soak's
//! `--verify`) relies on: every received frame was applied exactly once
//! or acknowledged as a duplicate, never both, never neither.
//!
//! Retryable deaths park; *authenticated* misbehavior — a frame that
//! passed its CRC but carries a sequence gap, ragged records, or a
//! frame type invalid for its direction — fails the session outright,
//! because a checksummed bad frame is a client bug, not wire damage.
//!
//! ## Shutdown
//!
//! SIGINT/SIGTERM (or [`ServerHandle::shutdown`]) stops the accept
//! loop; live sessions get up to `drain` to finish, are told
//! `server shutting down` in an `Error` frame otherwise, and the final
//! metrics page is flushed through the crash-safe `fsio` writer.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cache_sim::{Hierarchy, HierarchyConfig, StructureStats};

use crate::metrics::{Registry, SessionGauge};
use crate::protocol::{
    encode_frame, encode_hello_reply, encode_hello_reply_ok, parse_frame_header,
    retry_after_detail, verify_frame_crc, FrameHeader, FrameType, WireError, FRAME_HEADER_BYTES,
    MAGIC, MAX_CONFIG_BYTES, MAX_FRAME_BYTES, STATUS_BUSY, STATUS_REJECTED, VERSION,
};
use crate::session::SessionCore;
use crate::signal;

/// Socket poll tick: reads time out this often so loops can check the
/// shutdown flag and stall budget.
const TICK: Duration = Duration::from_millis(50);

/// How many recent batch summaries a session keeps for re-acking
/// duplicate frames after a resume. Must exceed any sane client
/// pipeline window (slam's default is 4).
const SUMMARY_RING: usize = 64;

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address like `127.0.0.1:7227`.
    Tcp(String),
    /// A unix socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parse `unix:<path>` or `<host>:<port>`.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix endpoint needs a path: unix:/tmp/jsn.sock".to_string());
            }
            Ok(Endpoint::Unix(PathBuf::from(path)))
        } else if s.contains(':') {
            Ok(Endpoint::Tcp(s.to_string()))
        } else {
            Err(format!("endpoint `{s}` is neither unix:<path> nor <host>:<port>"))
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "{a}"),
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// Server tuning knobs, all bounded.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrent sessions; hellos past the cap get `STATUS_BUSY`.
    pub max_sessions: usize,
    /// Bounded frame-queue depth between reader and worker (≥ 1).
    pub queue_frames: usize,
    /// Maximum frame payload the server will accept.
    pub max_frame_bytes: u32,
    /// Evict a session making no byte progress *mid-frame* for this long.
    pub stall_timeout: Duration,
    /// Evict a session sending no new frame for this long.
    pub idle_timeout: Duration,
    /// How long a parked session survives awaiting resume.
    pub resume_window: Duration,
    /// Maximum parked sessions; past it the oldest (finished first) are
    /// expired to make room.
    pub max_parked: usize,
    /// Shed new hellos while `jsn_queue_depth` ≥ this watermark
    /// (`None` disables shedding; `Some(0)` sheds everything — useful
    /// in tests).
    pub shed_watermark: Option<u64>,
    /// The `retry_after_ms=` hint attached to BUSY replies.
    pub retry_after_ms: u64,
    /// How long shutdown waits for live sessions to finish.
    pub drain: Duration,
    /// Where to flush the final metrics snapshot on shutdown.
    pub snapshot_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            queue_frames: 32,
            max_frame_bytes: MAX_FRAME_BYTES,
            stall_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            resume_window: Duration::from_secs(60),
            max_parked: 256,
            shed_watermark: None,
            retry_after_ms: 200,
            drain: Duration::from_secs(5),
            snapshot_path: None,
        }
    }
}

/// A live connection, TCP or unix.
pub enum Conn {
    /// TCP transport.
    Tcp(TcpStream),
    /// Unix-socket transport.
    Unix(UnixStream),
}

impl Conn {
    pub(crate) fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    pub(crate) fn set_timeouts(&self, t: Duration) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_read_timeout(Some(t))?;
                s.set_write_timeout(Some(t))
            }
            Conn::Unix(s) => {
                s.set_read_timeout(Some(t))?;
                s.set_write_timeout(Some(t))
            }
        }
    }

    pub(crate) fn shutdown_both(&self) {
        let _ = match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    /// Half-close: send FIN, keep the read side open. Lets a relay
    /// propagate end-of-stream downstream without tearing down the
    /// opposite direction of the same connection.
    pub(crate) fn shutdown_write(&self) {
        let _ = match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        };
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }

    fn set_nonblocking(&self, v: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(v),
            Listener::Unix(l) => l.set_nonblocking(v),
        }
    }
}

/// The resumable state of one logical session, carried across
/// connections.
struct SessionState {
    /// The filter preset label the session was created with.
    label: String,
    /// The replay state itself.
    core: SessionCore,
    /// Highest `Records` sequence number applied.
    last_acked: u64,
    /// Recent `(seq, summary)` pairs for re-acking duplicates.
    ring: VecDeque<(u64, [u8; 48])>,
    /// The encoded final `Stats` payload, once `Finish` has been
    /// served — kept so a client that lost the reply can ask again.
    finished: Option<Vec<u8>>,
}

impl SessionState {
    fn new(label: String, core: SessionCore) -> SessionState {
        SessionState { label, core, last_acked: 0, ring: VecDeque::new(), finished: None }
    }

    fn remember_summary(&mut self, seq: u64, summary: [u8; 48]) {
        if self.ring.len() >= SUMMARY_RING {
            self.ring.pop_front();
        }
        self.ring.push_back((seq, summary));
    }

    fn recall_summary(&self, seq: u64) -> [u8; 48] {
        // A duplicate older than the ring can only come from a client
        // rewinding further than it ever had in flight; ack it with a
        // zero-count summary — summaries are advisory, the final
        // `Stats` frame is the authoritative tally.
        self.ring
            .iter()
            .find(|(s, _)| *s == seq)
            .map(|(_, bytes)| *bytes)
            .unwrap_or_else(|| crate::protocol::encode_summary(seq, [0; 5]))
    }
}

struct Parked {
    state: SessionState,
    parked_at: Instant,
}

/// The parked-session table: token → resumable state, bounded in count
/// and in age.
struct Parking {
    table: Mutex<HashMap<u64, Parked>>,
    next_token: AtomicU64,
}

fn lock_table(m: &Mutex<HashMap<u64, Parked>>) -> std::sync::MutexGuard<'_, HashMap<u64, Parked>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Parking {
    fn new() -> Parking {
        Parking { table: Mutex::new(HashMap::new()), next_token: AtomicU64::new(1) }
    }

    /// A fresh nonzero session token.
    fn issue_token(&self) -> u64 {
        let t = splitmix64(self.next_token.fetch_add(1, Ordering::Relaxed));
        if t == 0 {
            1
        } else {
            t
        }
    }

    /// Drop entries older than `window`, charging `sessions_expired`.
    fn purge(&self, window: Duration, registry: &Registry) {
        let mut table = lock_table(&self.table);
        let before = table.len();
        table.retain(|_, p| p.parked_at.elapsed() <= window);
        let dropped = before - table.len();
        if dropped > 0 {
            registry.sessions_expired.fetch_add(dropped as u64, Ordering::Relaxed);
            registry.sessions_parked.fetch_sub(dropped as u64, Ordering::Relaxed);
        }
    }

    /// Park `state` under `token`. A full table expires finished
    /// tombstones first, then the oldest live entry.
    fn park(&self, token: u64, state: SessionState, config: &ServerConfig, registry: &Registry) {
        self.purge(config.resume_window, registry);
        let mut table = lock_table(&self.table);
        while table.len() >= config.max_parked.max(1) {
            let victim = table
                .iter()
                .min_by_key(|(_, p)| (p.state.finished.is_none(), p.parked_at))
                .map(|(t, _)| *t);
            match victim {
                Some(t) => {
                    table.remove(&t);
                    registry.sessions_expired.fetch_add(1, Ordering::Relaxed);
                    registry.sessions_parked.fetch_sub(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        table.insert(token, Parked { state, parked_at: Instant::now() });
        registry.sessions_parked.fetch_add(1, Ordering::Relaxed);
    }

    /// Take the parked state for `token`, if it is still within the
    /// resume window.
    fn resume(&self, token: u64, window: Duration, registry: &Registry) -> Option<SessionState> {
        self.purge(window, registry);
        let taken = lock_table(&self.table).remove(&token);
        if taken.is_some() {
            registry.sessions_parked.fetch_sub(1, Ordering::Relaxed);
        }
        taken.map(|p| p.state)
    }
}

/// A handle for stopping a running server and reading its metrics.
#[derive(Clone)]
pub struct ServerHandle {
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Ask the server to drain and exit.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

/// The server: bind with [`Server::bind`], then block in [`Server::run`].
pub struct Server {
    listener: Listener,
    endpoint: Endpoint,
    config: ServerConfig,
    registry: Arc<Registry>,
    parking: Arc<Parking>,
    shutdown: Arc<AtomicBool>,
    next_session: Arc<AtomicU64>,
}

impl Server {
    /// Bind `endpoint`. A stale unix socket file from a previous run is
    /// removed first.
    pub fn bind(endpoint: Endpoint, config: ServerConfig) -> std::io::Result<Server> {
        let listener = match &endpoint {
            Endpoint::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr.as_str())?),
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                Listener::Unix(UnixListener::bind(path)?)
            }
        };
        let hierarchy = Hierarchy::new(HierarchyConfig::paper_five_level());
        Ok(Server {
            listener,
            endpoint,
            config,
            registry: Arc::new(Registry::new(&hierarchy)),
            parking: Arc::new(Parking::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            next_session: Arc::new(AtomicU64::new(1)),
        })
    }

    /// The bound TCP address (resolves port 0), or the configured
    /// endpoint for unix sockets.
    pub fn local_endpoint(&self) -> Endpoint {
        match (&self.listener, &self.endpoint) {
            (Listener::Tcp(l), _) => match l.local_addr() {
                Ok(a) => Endpoint::Tcp(a.to_string()),
                Err(_) => self.endpoint.clone(),
            },
            (Listener::Unix(_), e) => e.clone(),
        }
    }

    /// The bound TCP socket address, if TCP.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(_) => None,
        }
    }

    /// A handle for shutdown and metrics access.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { registry: Arc::clone(&self.registry), shutdown: Arc::clone(&self.shutdown) }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::requested()
    }

    /// Accept sessions until shutdown, then drain and flush the final
    /// metrics snapshot.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shutting_down() {
            match self.listener.accept() {
                Ok(conn) => {
                    let registry = Arc::clone(&self.registry);
                    let parking = Arc::clone(&self.parking);
                    let shutdown = Arc::clone(&self.shutdown);
                    let config = self.config.clone();
                    let id = self.next_session.fetch_add(1, Ordering::Relaxed);
                    workers.push(std::thread::spawn(move || {
                        handle_connection(conn, id, &registry, &parking, &config, &shutdown);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                    workers.retain(|w| !w.is_finished());
                }
                Err(e) => return Err(e),
            }
        }

        // Drain: sessions observe the shutdown flag within one tick.
        let deadline = Instant::now() + self.config.drain;
        while self.registry.sessions_active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(20));
        }
        for w in workers {
            let _ = w.join();
        }

        if let Some(path) = &self.config.snapshot_path {
            let page = self.registry.render();
            mnm_experiments::fsio::write_artifact(path, page.as_bytes())?;
        }
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Read exactly `buf.len()` bytes, tolerating short reads and socket
/// timeouts, charging bytes to the registry, respecting the shutdown
/// flag and two progress budgets: `idle` (if set) bounds the wait for
/// the *first* byte and times out as [`WireError::Idle`]; `stall`
/// bounds every inter-byte gap after progress has started.
#[allow(clippy::too_many_arguments)]
fn read_exact_budget(
    conn: &mut Conn,
    buf: &mut [u8],
    stall: Duration,
    idle: Option<Duration>,
    shutdown: &AtomicBool,
    registry: &Registry,
    clean_eof: bool,
    context: &'static str,
) -> Result<(), WireError> {
    let mut filled = 0usize;
    let mut last_progress = Instant::now();
    while filled < buf.len() {
        match conn.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 && clean_eof {
                    WireError::Closed
                } else {
                    WireError::Torn { context }
                });
            }
            Ok(n) => {
                filled += n;
                registry.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                last_progress = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) || signal::requested() {
                    return Err(WireError::Shutdown);
                }
                match idle {
                    Some(budget) if filled == 0 => {
                        if last_progress.elapsed() > budget {
                            return Err(WireError::Idle);
                        }
                    }
                    _ => {
                        if last_progress.elapsed() > stall {
                            return Err(WireError::Stalled);
                        }
                    }
                }
            }
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// One frame off the wire, CRC-verified. The wait for the frame's first
/// byte is bounded by `idle`, everything after by `stall`.
fn read_frame(
    conn: &mut Conn,
    stall: Duration,
    idle: Duration,
    shutdown: &AtomicBool,
    registry: &Registry,
    max_payload: u32,
) -> Result<(FrameHeader, Vec<u8>), WireError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    read_exact_budget(
        conn,
        &mut header,
        stall,
        Some(idle),
        shutdown,
        registry,
        true,
        "frame header",
    )?;
    let parsed = parse_frame_header(&header, max_payload)?;
    let mut payload = vec![0u8; parsed.payload_len as usize];
    read_exact_budget(conn, &mut payload, stall, None, shutdown, registry, false, "frame payload")?;
    verify_frame_crc(&parsed, &payload)?;
    Ok((parsed, payload))
}

fn write_all_frame(
    conn: &mut Conn,
    frame_type: FrameType,
    payload: &[u8],
) -> Result<(), WireError> {
    let mut buf = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    encode_frame(frame_type, payload, &mut buf);
    write_with_timeouts(conn, &buf)
}

/// `write_all` that tolerates the per-socket timeout a few times before
/// declaring the client stalled (a client that never reads its
/// summaries must not wedge a worker thread).
fn write_with_timeouts(conn: &mut Conn, mut buf: &[u8]) -> Result<(), WireError> {
    let mut stalls = 0;
    while !buf.is_empty() {
        match conn.write(buf) {
            Ok(0) => return Err(WireError::Torn { context: "write" }),
            Ok(n) => {
                buf = &buf[n..];
                stalls = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                stalls += 1;
                if stalls > 100 {
                    return Err(WireError::Stalled);
                }
            }
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(())
}

enum ReaderMsg {
    Frame(FrameHeader, Vec<u8>),
    Failed(WireError),
}

/// How a session (this connection's slice of it) ended.
enum SessionEnd {
    /// `Finish` served for the first time: count a completion, park a
    /// finished tombstone so a lost `Stats` reply can be re-served.
    Completed,
    /// A finished tombstone re-served its `Stats`; nothing to recount.
    ReCompleted,
    /// Retryable wire failure: park the state for resume.
    Parked,
    /// Stall/idle deadline or shutdown drain: free the slot, drop the
    /// state.
    Evicted,
    /// Authenticated protocol violation: drop the state.
    Failed,
}

/// Is this reader error wire damage (parkable) rather than a deadline
/// or an authenticated client bug?
fn is_retryable(e: &WireError) -> bool {
    matches!(
        e,
        WireError::Closed
            | WireError::Torn { .. }
            | WireError::Io(_)
            | WireError::Crc { .. }
            | WireError::BadFrameType(_)
            | WireError::Oversize { .. }
    )
}

fn reject(conn: &mut Conn, registry: &Registry, detail: &str) {
    registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
    registry.sessions_rejected.fetch_add(1, Ordering::Relaxed);
    let _ = write_with_timeouts(conn, &encode_hello_reply(STATUS_REJECTED, detail));
}

fn handle_connection(
    mut conn: Conn,
    id: u64,
    registry: &Arc<Registry>,
    parking: &Arc<Parking>,
    config: &ServerConfig,
    shutdown: &Arc<AtomicBool>,
) {
    if conn.set_timeouts(TICK).is_err() {
        return;
    }

    // Sniff the first four bytes: an HTTP GET serves the metrics page,
    // anything else must be a protocol hello.
    let mut head = [0u8; 4];
    if read_exact_budget(
        &mut conn,
        &mut head,
        config.stall_timeout,
        None,
        shutdown,
        registry,
        true,
        "hello magic",
    )
    .is_err()
    {
        return;
    }
    if &head == b"GET " {
        serve_metrics(&mut conn, config, shutdown, registry);
        return;
    }
    if head != MAGIC {
        reject(&mut conn, registry, &WireError::BadMagic(head).to_string());
        return;
    }

    // Version + config-label length. Reading only these four bytes
    // before the version check is what keeps mismatches clean in both
    // directions: every protocol version's hello starts this way, so a
    // v1 client is answered with a well-formed versioned rejection
    // instead of a decode failure — and never has its (shorter) hello
    // over-read.
    let mut fixed = [0u8; 4];
    if read_exact_budget(
        &mut conn,
        &mut fixed,
        config.stall_timeout,
        None,
        shutdown,
        registry,
        false,
        "hello header",
    )
    .is_err()
    {
        registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
        registry.sessions_rejected.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let version = u16::from_le_bytes([fixed[0], fixed[1]]);
    let config_len = u16::from_le_bytes([fixed[2], fixed[3]]) as usize;
    if version != VERSION {
        reject(&mut conn, registry, &WireError::BadVersion { got: version }.to_string());
        return;
    }
    if config_len > MAX_CONFIG_BYTES {
        reject(&mut conn, registry, &format!("config label of {config_len} bytes is too long"));
        return;
    }
    let mut label_bytes = vec![0u8; config_len];
    if read_exact_budget(
        &mut conn,
        &mut label_bytes,
        config.stall_timeout,
        None,
        shutdown,
        registry,
        false,
        "hello config",
    )
    .is_err()
    {
        registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
        registry.sessions_rejected.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let Ok(label) = String::from_utf8(label_bytes) else {
        reject(&mut conn, registry, "config label is not utf-8");
        return;
    };
    let mut token_bytes = [0u8; 8];
    if read_exact_budget(
        &mut conn,
        &mut token_bytes,
        config.stall_timeout,
        None,
        shutdown,
        registry,
        false,
        "hello token",
    )
    .is_err()
    {
        registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
        registry.sessions_rejected.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let resume_token = u64::from_le_bytes(token_bytes);

    let (token, state) = if resume_token != 0 {
        // Resume: the client holds a token from an earlier connection.
        match parking.resume(resume_token, config.resume_window, registry) {
            Some(state) => (resume_token, state),
            None => {
                reject(&mut conn, registry, &WireError::BadToken.to_string());
                return;
            }
        }
    } else {
        // Admission control: a queue already at the watermark means
        // every admitted frame waits behind it — shed instead. Resumes
        // are exempt: they were already admitted once and shedding
        // them would strand parked state.
        if let Some(watermark) = config.shed_watermark {
            if registry.queue_depth.load(Ordering::Relaxed) >= watermark {
                registry.sessions_shed.fetch_add(1, Ordering::Relaxed);
                registry.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                let _ = write_with_timeouts(
                    &mut conn,
                    &encode_hello_reply(
                        STATUS_BUSY,
                        &retry_after_detail("server shedding load", config.retry_after_ms),
                    ),
                );
                return;
            }
        }
        // Build the session before claiming a slot, so a bad label
        // never occupies one.
        match SessionCore::new(&label) {
            Ok(core) => (parking.issue_token(), SessionState::new(label.clone(), core)),
            Err(e) => {
                reject(&mut conn, registry, &e);
                return;
            }
        }
    };
    let resumed = resume_token != 0;

    // Claim a session slot under the global cap.
    let claimed = registry
        .sessions_active
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            if (n as usize) < config.max_sessions {
                Some(n + 1)
            } else {
                None
            }
        })
        .is_ok();
    if !claimed {
        registry.sessions_rejected.fetch_add(1, Ordering::Relaxed);
        let _ = write_with_timeouts(
            &mut conn,
            &encode_hello_reply(
                STATUS_BUSY,
                &retry_after_detail(
                    &format!("server at its {}-session cap", config.max_sessions),
                    config.retry_after_ms,
                ),
            ),
        );
        if resumed {
            // Don't strand the state the client will retry for.
            parking.park(token, state, config, registry);
        }
        return;
    }
    registry.sessions_accepted.fetch_add(1, Ordering::Relaxed);
    if resumed {
        registry.sessions_resumed.fetch_add(1, Ordering::Relaxed);
    }
    if write_with_timeouts(&mut conn, &encode_hello_reply_ok(token, state.last_acked)).is_err() {
        // The reply never arrived; park so the token (already held by a
        // resuming client) or nothing (a new client never learned the
        // token) is recoverable. New-session state at this point is
        // empty, so parking it is harmless either way.
        if resumed {
            parking.park(token, state, config, registry);
        } else {
            registry.sessions_failed.fetch_add(1, Ordering::Relaxed);
        }
        registry.sessions_active.fetch_sub(1, Ordering::SeqCst);
        return;
    }

    let was_finished = state.finished.is_some();
    let (end, state) = run_session(&mut conn, id, state, registry, config, shutdown);

    registry.remove_session_gauge(id);
    match end {
        SessionEnd::Completed => {
            registry.sessions_completed.fetch_add(1, Ordering::Relaxed);
            parking.park(token, state, config, registry);
        }
        SessionEnd::ReCompleted => {
            debug_assert!(was_finished);
            parking.park(token, state, config, registry);
        }
        SessionEnd::Parked => {
            parking.park(token, state, config, registry);
        }
        SessionEnd::Evicted => {
            registry.sessions_evicted.fetch_add(1, Ordering::Relaxed);
        }
        SessionEnd::Failed => {
            registry.sessions_failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    registry.sessions_active.fetch_sub(1, Ordering::SeqCst);
    conn.shutdown_both();
}

fn run_session(
    conn: &mut Conn,
    id: u64,
    mut state: SessionState,
    registry: &Arc<Registry>,
    config: &ServerConfig,
    shutdown: &Arc<AtomicBool>,
) -> (SessionEnd, SessionState) {
    let (tx, rx): (SyncSender<ReaderMsg>, Receiver<ReaderMsg>) =
        std::sync::mpsc::sync_channel(config.queue_frames.max(1));

    let reader_conn = match conn.try_clone() {
        Ok(c) => c,
        Err(e) => {
            let _ = write_all_frame(conn, FrameType::Error, e.to_string().as_bytes());
            return (SessionEnd::Failed, state);
        }
    };
    let reader = {
        let registry = Arc::clone(registry);
        let shutdown = Arc::clone(shutdown);
        let stall = config.stall_timeout;
        let idle = config.idle_timeout;
        let max_payload = config.max_frame_bytes;
        std::thread::spawn(move || {
            let mut conn = reader_conn;
            loop {
                match read_frame(&mut conn, stall, idle, &shutdown, &registry, max_payload) {
                    Ok((header, payload)) => {
                        // Gauge first, then the blocking send — the
                        // worker only ever decrements what was already
                        // counted. The send IS the back-pressure: a
                        // full queue stops the reader, and the kernel
                        // buffer stalls the client.
                        registry.queue_depth.fetch_add(1, Ordering::Relaxed);
                        if tx.send(ReaderMsg::Frame(header, payload)).is_err() {
                            registry.queue_depth.fetch_sub(1, Ordering::Relaxed);
                            return;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(ReaderMsg::Failed(e));
                        return;
                    }
                }
            }
        })
    };

    // Verdict deltas are computed against the stats at *connection*
    // start: on a resume this is the parked cumulative state, so the
    // global verdict counters never re-count work a previous
    // connection already reported.
    let mut prev: Vec<StructureStats> = state.core.structure_stats().to_vec();
    let mut deltas: Vec<(u64, u64, u64)> = Vec::with_capacity(prev.len());
    let mut records_scratch = Vec::new();
    // Once shutdown is observed the session may keep serving until the
    // drain budget runs out, then is told to go away.
    let mut drain_deadline: Option<Instant> = None;
    let end = loop {
        if shutdown.load(Ordering::SeqCst) || signal::requested() {
            let deadline = *drain_deadline.get_or_insert_with(|| Instant::now() + config.drain);
            if Instant::now() >= deadline {
                let _ = write_all_frame(
                    conn,
                    FrameType::Error,
                    WireError::Shutdown.to_string().as_bytes(),
                );
                break SessionEnd::Evicted;
            }
        }
        match rx.recv_timeout(TICK) {
            Ok(ReaderMsg::Frame(header, payload)) => {
                registry.queue_depth.fetch_sub(1, Ordering::Relaxed);
                match header.frame_type {
                    FrameType::Records => {
                        let t0 = Instant::now();
                        records_scratch.clear();
                        let seq =
                            match crate::protocol::decode_records(&payload, &mut records_scratch) {
                                Ok(seq) => seq,
                                Err(e) => {
                                    // The frame passed its CRC, so this is
                                    // not wire damage: fail, don't park.
                                    registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
                                    let _ = write_all_frame(
                                        conn,
                                        FrameType::Error,
                                        e.to_string().as_bytes(),
                                    );
                                    break SessionEnd::Failed;
                                }
                            };
                        if seq <= state.last_acked {
                            // Duplicate from a resume replay: re-ack
                            // without touching the replay state —
                            // exactly-once is this branch.
                            registry.frames_in.fetch_add(1, Ordering::Relaxed);
                            registry.frames_replayed.fetch_add(1, Ordering::Relaxed);
                            let reply = state.recall_summary(seq);
                            if write_all_frame(conn, FrameType::Summary, &reply).is_err() {
                                break SessionEnd::Parked;
                            }
                            continue;
                        }
                        if seq != state.last_acked + 1 {
                            registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            let _ = write_all_frame(
                                conn,
                                FrameType::Error,
                                WireError::SeqGap { acked: state.last_acked, got: seq }
                                    .to_string()
                                    .as_bytes(),
                            );
                            break SessionEnd::Failed;
                        }
                        let summary = state.core.feed(&records_scratch);
                        state.last_acked = seq;
                        registry.frames_in.fetch_add(1, Ordering::Relaxed);
                        registry.frames_applied.fetch_add(1, Ordering::Relaxed);
                        registry
                            .records_in
                            .fetch_add(records_scratch.len() as u64, Ordering::Relaxed);
                        registry.accesses.fetch_add(summary.accesses, Ordering::Relaxed);
                        deltas.clear();
                        for (now, before) in state.core.structure_stats().iter().zip(&prev) {
                            deltas.push((
                                now.hits - before.hits,
                                now.misses - before.misses,
                                now.bypasses - before.bypasses,
                            ));
                        }
                        registry.add_verdicts(&deltas);
                        prev.clear();
                        prev.extend_from_slice(state.core.structure_stats());
                        let occ = state.core.occupancy();
                        registry.set_session_gauge(
                            id,
                            SessionGauge {
                                config: state.label.clone(),
                                occupancy_tracked: occ.tracked,
                                occupancy_capacity: occ.capacity,
                                accesses: state.core.accesses(),
                            },
                        );
                        let reply = crate::protocol::encode_summary(
                            seq,
                            [
                                summary.accesses,
                                summary.total_latency,
                                summary.l1_hits,
                                summary.misses,
                                summary.bypassed,
                            ],
                        );
                        state.remember_summary(seq, reply);
                        if write_all_frame(conn, FrameType::Summary, &reply).is_err() {
                            break SessionEnd::Parked;
                        }
                        registry.latency.observe(t0.elapsed().as_micros() as u64);
                    }
                    FrameType::Finish => {
                        if let Some(stats) = &state.finished {
                            // A client that lost the first Stats reply
                            // asks again; serve the cached payload.
                            let payload = stats.clone();
                            let _ = write_all_frame(conn, FrameType::Stats, &payload);
                            break SessionEnd::ReCompleted;
                        }
                        // Even if the reply write fails, the session
                        // IS complete: the tombstone parked under
                        // Completed lets the client's retry re-fetch
                        // the cached Stats.
                        let stats = state.core.stats_wire().encode();
                        let _ = write_all_frame(conn, FrameType::Stats, &stats);
                        state.finished = Some(stats);
                        break SessionEnd::Completed;
                    }
                    FrameType::Summary | FrameType::Stats | FrameType::Error => {
                        registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        let _ = write_all_frame(
                            conn,
                            FrameType::Error,
                            WireError::Unexpected("server-to-client frame type from a client")
                                .to_string()
                                .as_bytes(),
                        );
                        break SessionEnd::Failed;
                    }
                }
            }
            Ok(ReaderMsg::Failed(e)) => {
                if matches!(e, WireError::Crc { .. }) {
                    registry.crc_errors.fetch_add(1, Ordering::Relaxed);
                }
                break match e {
                    WireError::Stalled | WireError::Idle | WireError::Shutdown => {
                        let _ = write_all_frame(conn, FrameType::Error, e.to_string().as_bytes());
                        SessionEnd::Evicted
                    }
                    ref err if is_retryable(err) => {
                        registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        // Best effort: the socket may already be gone.
                        let _ = write_all_frame(conn, FrameType::Error, e.to_string().as_bytes());
                        SessionEnd::Parked
                    }
                    other => {
                        registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        let _ =
                            write_all_frame(conn, FrameType::Error, other.to_string().as_bytes());
                        SessionEnd::Failed
                    }
                };
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break SessionEnd::Failed,
        }
    };

    // Unblock and reap the reader: closing the socket fails its read.
    conn.shutdown_both();
    let _ = reader.join();
    // Frames the worker never consumed must not leak into the gauge.
    while let Ok(msg) = rx.try_recv() {
        if matches!(msg, ReaderMsg::Frame(..)) {
            registry.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
    }
    (end, state)
}

/// Serve `GET /metrics` (HTTP/1.0, close-delimited). The `GET ` prefix
/// has already been consumed.
fn serve_metrics(
    conn: &mut Conn,
    config: &ServerConfig,
    shutdown: &Arc<AtomicBool>,
    registry: &Arc<Registry>,
) {
    // Read the rest of the request head, bounded.
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    let deadline = Instant::now() + config.stall_timeout;
    while !head.ends_with(b"\r\n\r\n") && !head.ends_with(b"\n\n") && head.len() < 4096 {
        match conn.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if Instant::now() > deadline
                    || shutdown.load(Ordering::SeqCst)
                    || signal::requested()
                {
                    return;
                }
            }
            Err(_) => return,
        }
    }
    let path =
        std::str::from_utf8(&head).ok().and_then(|s| s.split_whitespace().next()).unwrap_or("");
    let (status, body) = if path.starts_with("/metrics") {
        registry.scrapes.fetch_add(1, Ordering::Relaxed);
        ("200 OK", registry.render())
    } else {
        ("404 Not Found", format!("no such page `{path}`; scrape /metrics\n"))
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = write_with_timeouts(conn, response.as_bytes());
    conn.shutdown_both();
}
