//! The `jsn serve` daemon: a threaded TCP / unix-socket server that
//! runs one [`SessionCore`] per connection.
//!
//! ## Threading and back-pressure
//!
//! Each accepted session gets two threads: a **reader** that pulls
//! frames off the socket and a **worker** that replays them. They are
//! joined by a *bounded* [`std::sync::mpsc::sync_channel`]: when the
//! worker falls behind, the channel fills, the reader blocks, the
//! kernel receive buffer fills, and the client's writes stall — classic
//! TCP back-pressure with a hard bound on per-session buffered memory
//! (`queue_frames × max_frame_bytes` plus one in-flight frame).
//!
//! Global memory is bounded by `max_sessions`: a hello past the cap is
//! answered with `STATUS_BUSY` and the connection closed. A client that
//! makes no byte progress for `stall_timeout` is evicted.
//!
//! ## Shutdown
//!
//! SIGINT/SIGTERM (or [`ServerHandle::shutdown`]) stops the accept
//! loop; live sessions get up to `drain` to finish, are told
//! `server shutting down` in an `Error` frame otherwise, and the final
//! metrics page is flushed through the crash-safe `fsio` writer.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cache_sim::{Hierarchy, HierarchyConfig, StructureStats};

use crate::metrics::{Registry, SessionGauge};
use crate::protocol::{
    encode_frame, encode_hello_reply, parse_frame_header, FrameHeader, FrameType, WireError,
    FRAME_HEADER_BYTES, MAGIC, MAX_CONFIG_BYTES, MAX_FRAME_BYTES, STATUS_BUSY, STATUS_OK,
    STATUS_REJECTED, VERSION,
};
use crate::session::SessionCore;
use crate::signal;

/// Socket poll tick: reads time out this often so loops can check the
/// shutdown flag and stall budget.
const TICK: Duration = Duration::from_millis(50);

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address like `127.0.0.1:7227`.
    Tcp(String),
    /// A unix socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parse `unix:<path>` or `<host>:<port>`.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix endpoint needs a path: unix:/tmp/jsn.sock".to_string());
            }
            Ok(Endpoint::Unix(PathBuf::from(path)))
        } else if s.contains(':') {
            Ok(Endpoint::Tcp(s.to_string()))
        } else {
            Err(format!("endpoint `{s}` is neither unix:<path> nor <host>:<port>"))
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "{a}"),
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// Server tuning knobs, all bounded.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrent sessions; hellos past the cap get `STATUS_BUSY`.
    pub max_sessions: usize,
    /// Bounded frame-queue depth between reader and worker (≥ 1).
    pub queue_frames: usize,
    /// Maximum frame payload the server will accept.
    pub max_frame_bytes: u32,
    /// Evict a session making no byte progress for this long.
    pub stall_timeout: Duration,
    /// How long shutdown waits for live sessions to finish.
    pub drain: Duration,
    /// Where to flush the final metrics snapshot on shutdown.
    pub snapshot_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            queue_frames: 32,
            max_frame_bytes: MAX_FRAME_BYTES,
            stall_timeout: Duration::from_secs(10),
            drain: Duration::from_secs(5),
            snapshot_path: None,
        }
    }
}

/// A live connection, TCP or unix.
pub enum Conn {
    /// TCP transport.
    Tcp(TcpStream),
    /// Unix-socket transport.
    Unix(UnixStream),
}

impl Conn {
    pub(crate) fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    pub(crate) fn set_timeouts(&self, t: Duration) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_read_timeout(Some(t))?;
                s.set_write_timeout(Some(t))
            }
            Conn::Unix(s) => {
                s.set_read_timeout(Some(t))?;
                s.set_write_timeout(Some(t))
            }
        }
    }

    pub(crate) fn shutdown_both(&self) {
        let _ = match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }

    fn set_nonblocking(&self, v: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(v),
            Listener::Unix(l) => l.set_nonblocking(v),
        }
    }
}

/// A handle for stopping a running server and reading its metrics.
#[derive(Clone)]
pub struct ServerHandle {
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Ask the server to drain and exit.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

/// The server: bind with [`Server::bind`], then block in [`Server::run`].
pub struct Server {
    listener: Listener,
    endpoint: Endpoint,
    config: ServerConfig,
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
    next_session: Arc<AtomicU64>,
}

impl Server {
    /// Bind `endpoint`. A stale unix socket file from a previous run is
    /// removed first.
    pub fn bind(endpoint: Endpoint, config: ServerConfig) -> std::io::Result<Server> {
        let listener = match &endpoint {
            Endpoint::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr.as_str())?),
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                Listener::Unix(UnixListener::bind(path)?)
            }
        };
        let hierarchy = Hierarchy::new(HierarchyConfig::paper_five_level());
        Ok(Server {
            listener,
            endpoint,
            config,
            registry: Arc::new(Registry::new(&hierarchy)),
            shutdown: Arc::new(AtomicBool::new(false)),
            next_session: Arc::new(AtomicU64::new(1)),
        })
    }

    /// The bound TCP address (resolves port 0), or the configured
    /// endpoint for unix sockets.
    pub fn local_endpoint(&self) -> Endpoint {
        match (&self.listener, &self.endpoint) {
            (Listener::Tcp(l), _) => match l.local_addr() {
                Ok(a) => Endpoint::Tcp(a.to_string()),
                Err(_) => self.endpoint.clone(),
            },
            (Listener::Unix(_), e) => e.clone(),
        }
    }

    /// The bound TCP socket address, if TCP.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(_) => None,
        }
    }

    /// A handle for shutdown and metrics access.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { registry: Arc::clone(&self.registry), shutdown: Arc::clone(&self.shutdown) }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::requested()
    }

    /// Accept sessions until shutdown, then drain and flush the final
    /// metrics snapshot.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shutting_down() {
            match self.listener.accept() {
                Ok(conn) => {
                    let registry = Arc::clone(&self.registry);
                    let shutdown = Arc::clone(&self.shutdown);
                    let config = self.config.clone();
                    let id = self.next_session.fetch_add(1, Ordering::Relaxed);
                    workers.push(std::thread::spawn(move || {
                        handle_connection(conn, id, &registry, &config, &shutdown);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                    workers.retain(|w| !w.is_finished());
                }
                Err(e) => return Err(e),
            }
        }

        // Drain: sessions observe the shutdown flag within one tick.
        let deadline = Instant::now() + self.config.drain;
        while self.registry.sessions_active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(20));
        }
        for w in workers {
            let _ = w.join();
        }

        if let Some(path) = &self.config.snapshot_path {
            let page = self.registry.render();
            mnm_experiments::fsio::write_artifact(path, page.as_bytes())?;
        }
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Read exactly `buf.len()` bytes, tolerating short reads and socket
/// timeouts, charging bytes to the registry, respecting the stall
/// budget and the shutdown flag.
fn read_exact_budget(
    conn: &mut Conn,
    buf: &mut [u8],
    stall: Duration,
    shutdown: &AtomicBool,
    registry: &Registry,
    clean_eof: bool,
    context: &'static str,
) -> Result<(), WireError> {
    let mut filled = 0usize;
    let mut last_progress = Instant::now();
    while filled < buf.len() {
        match conn.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 && clean_eof {
                    WireError::Closed
                } else {
                    WireError::Torn { context }
                });
            }
            Ok(n) => {
                filled += n;
                registry.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                last_progress = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) || signal::requested() {
                    return Err(WireError::Shutdown);
                }
                if last_progress.elapsed() > stall {
                    return Err(WireError::Stalled);
                }
            }
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// One frame off the wire.
fn read_frame(
    conn: &mut Conn,
    stall: Duration,
    shutdown: &AtomicBool,
    registry: &Registry,
    max_payload: u32,
) -> Result<(FrameHeader, Vec<u8>), WireError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    read_exact_budget(conn, &mut header, stall, shutdown, registry, true, "frame header")?;
    let parsed = parse_frame_header(&header, max_payload)?;
    let mut payload = vec![0u8; parsed.payload_len as usize];
    read_exact_budget(conn, &mut payload, stall, shutdown, registry, false, "frame payload")?;
    Ok((parsed, payload))
}

fn write_all_frame(
    conn: &mut Conn,
    frame_type: FrameType,
    payload: &[u8],
) -> Result<(), WireError> {
    let mut buf = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    encode_frame(frame_type, payload, &mut buf);
    write_with_timeouts(conn, &buf)
}

/// `write_all` that tolerates the per-socket timeout a few times before
/// declaring the client stalled (a client that never reads its
/// summaries must not wedge a worker thread).
fn write_with_timeouts(conn: &mut Conn, mut buf: &[u8]) -> Result<(), WireError> {
    let mut stalls = 0;
    while !buf.is_empty() {
        match conn.write(buf) {
            Ok(0) => return Err(WireError::Torn { context: "write" }),
            Ok(n) => {
                buf = &buf[n..];
                stalls = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                stalls += 1;
                if stalls > 100 {
                    return Err(WireError::Stalled);
                }
            }
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(())
}

enum ReaderMsg {
    Frame(FrameHeader, Vec<u8>),
    Failed(WireError),
}

/// How a session ended, for the metrics counters.
enum Outcome {
    Completed,
    Evicted,
    Failed,
}

fn handle_connection(
    mut conn: Conn,
    id: u64,
    registry: &Arc<Registry>,
    config: &ServerConfig,
    shutdown: &Arc<AtomicBool>,
) {
    if conn.set_timeouts(TICK).is_err() {
        return;
    }

    // Sniff the first four bytes: an HTTP GET serves the metrics page,
    // anything else must be a protocol hello.
    let mut head = [0u8; 4];
    if read_exact_budget(
        &mut conn,
        &mut head,
        config.stall_timeout,
        shutdown,
        registry,
        true,
        "hello magic",
    )
    .is_err()
    {
        return;
    }
    if &head == b"GET " {
        serve_metrics(&mut conn, config, shutdown, registry);
        return;
    }
    if head != MAGIC {
        registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
        registry.sessions_rejected.fetch_add(1, Ordering::Relaxed);
        let _ = write_with_timeouts(
            &mut conn,
            &encode_hello_reply(STATUS_REJECTED, &WireError::BadMagic(head).to_string()),
        );
        return;
    }

    // Version + config label.
    let mut fixed = [0u8; 4];
    if read_exact_budget(
        &mut conn,
        &mut fixed,
        config.stall_timeout,
        shutdown,
        registry,
        false,
        "hello header",
    )
    .is_err()
    {
        registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
        registry.sessions_rejected.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let version = u16::from_le_bytes([fixed[0], fixed[1]]);
    let config_len = u16::from_le_bytes([fixed[2], fixed[3]]) as usize;
    if version != VERSION {
        registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
        registry.sessions_rejected.fetch_add(1, Ordering::Relaxed);
        let _ = write_with_timeouts(
            &mut conn,
            &encode_hello_reply(
                STATUS_REJECTED,
                &WireError::BadVersion { got: version }.to_string(),
            ),
        );
        return;
    }
    if config_len > MAX_CONFIG_BYTES {
        registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
        registry.sessions_rejected.fetch_add(1, Ordering::Relaxed);
        let _ = write_with_timeouts(
            &mut conn,
            &encode_hello_reply(
                STATUS_REJECTED,
                &format!("config label of {config_len} bytes is too long"),
            ),
        );
        return;
    }
    let mut label_bytes = vec![0u8; config_len];
    if read_exact_budget(
        &mut conn,
        &mut label_bytes,
        config.stall_timeout,
        shutdown,
        registry,
        false,
        "hello config",
    )
    .is_err()
    {
        registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
        registry.sessions_rejected.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let Ok(label) = String::from_utf8(label_bytes) else {
        registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
        registry.sessions_rejected.fetch_add(1, Ordering::Relaxed);
        let _ = write_with_timeouts(
            &mut conn,
            &encode_hello_reply(STATUS_REJECTED, "config label is not utf-8"),
        );
        return;
    };

    // Build the session before claiming a slot, so a bad label never
    // occupies one.
    let core = match SessionCore::new(&label) {
        Ok(core) => core,
        Err(e) => {
            registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
            registry.sessions_rejected.fetch_add(1, Ordering::Relaxed);
            let _ = write_with_timeouts(&mut conn, &encode_hello_reply(STATUS_REJECTED, &e));
            return;
        }
    };

    // Claim a session slot under the global cap.
    let claimed = registry
        .sessions_active
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            if (n as usize) < config.max_sessions {
                Some(n + 1)
            } else {
                None
            }
        })
        .is_ok();
    if !claimed {
        registry.sessions_rejected.fetch_add(1, Ordering::Relaxed);
        let _ = write_with_timeouts(
            &mut conn,
            &encode_hello_reply(
                STATUS_BUSY,
                &format!("server at its {}-session cap", config.max_sessions),
            ),
        );
        return;
    }
    registry.sessions_accepted.fetch_add(1, Ordering::Relaxed);
    if write_with_timeouts(&mut conn, &encode_hello_reply(STATUS_OK, "")).is_err() {
        registry.sessions_failed.fetch_add(1, Ordering::Relaxed);
        registry.sessions_active.fetch_sub(1, Ordering::SeqCst);
        return;
    }

    let outcome = run_session(&mut conn, id, core, &label, registry, config, shutdown);

    registry.remove_session_gauge(id);
    match outcome {
        Outcome::Completed => registry.sessions_completed.fetch_add(1, Ordering::Relaxed),
        Outcome::Evicted => registry.sessions_evicted.fetch_add(1, Ordering::Relaxed),
        Outcome::Failed => registry.sessions_failed.fetch_add(1, Ordering::Relaxed),
    };
    registry.sessions_active.fetch_sub(1, Ordering::SeqCst);
    conn.shutdown_both();
}

fn run_session(
    conn: &mut Conn,
    id: u64,
    mut core: SessionCore,
    label: &str,
    registry: &Arc<Registry>,
    config: &ServerConfig,
    shutdown: &Arc<AtomicBool>,
) -> Outcome {
    let (tx, rx): (SyncSender<ReaderMsg>, Receiver<ReaderMsg>) =
        std::sync::mpsc::sync_channel(config.queue_frames.max(1));

    let reader_conn = match conn.try_clone() {
        Ok(c) => c,
        Err(e) => {
            let _ = write_all_frame(conn, FrameType::Error, e.to_string().as_bytes());
            return Outcome::Failed;
        }
    };
    let reader = {
        let registry = Arc::clone(registry);
        let shutdown = Arc::clone(shutdown);
        let stall = config.stall_timeout;
        let max_payload = config.max_frame_bytes;
        std::thread::spawn(move || {
            let mut conn = reader_conn;
            loop {
                match read_frame(&mut conn, stall, &shutdown, &registry, max_payload) {
                    Ok((header, payload)) => {
                        // Blocking send IS the back-pressure: a full
                        // queue stops the reader, and the kernel buffer
                        // stalls the client.
                        if tx.send(ReaderMsg::Frame(header, payload)).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(ReaderMsg::Failed(e));
                        return;
                    }
                }
            }
        })
    };

    let mut prev: Vec<StructureStats> = core.structure_stats().to_vec();
    let mut deltas: Vec<(u64, u64, u64)> = Vec::with_capacity(prev.len());
    let mut records_scratch = Vec::new();
    // Once shutdown is observed the session may keep serving until the
    // drain budget runs out, then is told to go away.
    let mut drain_deadline: Option<Instant> = None;
    let outcome = loop {
        if shutdown.load(Ordering::SeqCst) || signal::requested() {
            let deadline = *drain_deadline.get_or_insert_with(|| Instant::now() + config.drain);
            if Instant::now() >= deadline {
                let _ = write_all_frame(
                    conn,
                    FrameType::Error,
                    WireError::Shutdown.to_string().as_bytes(),
                );
                break Outcome::Evicted;
            }
        }
        match rx.recv_timeout(TICK) {
            Ok(ReaderMsg::Frame(header, payload)) => match header.frame_type {
                FrameType::Records => {
                    let t0 = Instant::now();
                    records_scratch.clear();
                    if let Err(e) = crate::protocol::decode_records(&payload, &mut records_scratch)
                    {
                        registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        let _ = write_all_frame(conn, FrameType::Error, e.to_string().as_bytes());
                        break Outcome::Failed;
                    }
                    let summary = core.feed(&records_scratch);
                    registry.frames_in.fetch_add(1, Ordering::Relaxed);
                    registry.records_in.fetch_add(records_scratch.len() as u64, Ordering::Relaxed);
                    registry.accesses.fetch_add(summary.accesses, Ordering::Relaxed);
                    deltas.clear();
                    for (now, before) in core.structure_stats().iter().zip(&prev) {
                        deltas.push((
                            now.hits - before.hits,
                            now.misses - before.misses,
                            now.bypasses - before.bypasses,
                        ));
                    }
                    registry.add_verdicts(&deltas);
                    prev.clear();
                    prev.extend_from_slice(core.structure_stats());
                    let occ = core.occupancy();
                    registry.set_session_gauge(
                        id,
                        SessionGauge {
                            config: label.to_string(),
                            occupancy_tracked: occ.tracked,
                            occupancy_capacity: occ.capacity,
                            accesses: core.accesses(),
                        },
                    );
                    let reply = crate::protocol::encode_summary(
                        summary.accesses,
                        summary.total_latency,
                        summary.l1_hits,
                        summary.misses,
                        summary.bypassed,
                    );
                    if write_all_frame(conn, FrameType::Summary, &reply).is_err() {
                        break Outcome::Evicted;
                    }
                    registry.latency.observe(t0.elapsed().as_micros() as u64);
                }
                FrameType::Finish => {
                    let stats = core.stats_wire().encode();
                    let _ = write_all_frame(conn, FrameType::Stats, &stats);
                    break Outcome::Completed;
                }
                FrameType::Summary | FrameType::Stats | FrameType::Error => {
                    registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = write_all_frame(
                        conn,
                        FrameType::Error,
                        WireError::Unexpected("server-to-client frame type from a client")
                            .to_string()
                            .as_bytes(),
                    );
                    break Outcome::Failed;
                }
            },
            Ok(ReaderMsg::Failed(e)) => {
                break match e {
                    WireError::Stalled => {
                        let _ = write_all_frame(conn, FrameType::Error, e.to_string().as_bytes());
                        Outcome::Evicted
                    }
                    WireError::Shutdown => {
                        let _ = write_all_frame(conn, FrameType::Error, e.to_string().as_bytes());
                        Outcome::Evicted
                    }
                    WireError::Closed | WireError::Torn { .. } | WireError::Io(_) => {
                        // Mid-session disconnect: nothing to tell the
                        // peer, the socket is gone.
                        registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        Outcome::Failed
                    }
                    other => {
                        registry.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        let _ =
                            write_all_frame(conn, FrameType::Error, other.to_string().as_bytes());
                        Outcome::Failed
                    }
                };
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break Outcome::Failed,
        }
    };

    // Unblock and reap the reader: closing the socket fails its read.
    conn.shutdown_both();
    let _ = reader.join();
    outcome
}

/// Serve `GET /metrics` (HTTP/1.0, close-delimited). The `GET ` prefix
/// has already been consumed.
fn serve_metrics(
    conn: &mut Conn,
    config: &ServerConfig,
    shutdown: &Arc<AtomicBool>,
    registry: &Arc<Registry>,
) {
    // Read the rest of the request head, bounded.
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    let deadline = Instant::now() + config.stall_timeout;
    while !head.ends_with(b"\r\n\r\n") && !head.ends_with(b"\n\n") && head.len() < 4096 {
        match conn.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if Instant::now() > deadline
                    || shutdown.load(Ordering::SeqCst)
                    || signal::requested()
                {
                    return;
                }
            }
            Err(_) => return,
        }
    }
    let path =
        std::str::from_utf8(&head).ok().and_then(|s| s.split_whitespace().next()).unwrap_or("");
    let (status, body) = if path.starts_with("/metrics") {
        registry.scrapes.fetch_add(1, Ordering::Relaxed);
        ("200 OK", registry.render())
    } else {
        ("404 Not Found", format!("no such page `{path}`; scrape /metrics\n"))
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = write_with_timeouts(conn, response.as_bytes());
    conn.shutdown_both();
}
