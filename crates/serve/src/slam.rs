//! `jsn slam`: a load generator for `jsn serve`.
//!
//! Spawns N concurrent client sessions, each streaming a deterministic
//! synthetic-profile trace (derived from `--seed`, so any run can be
//! reproduced offline), and reports sessions/sec, per-frame round-trip
//! p50/p99 and dropped-frame counts.
//!
//! ## Retry and resume
//!
//! Each session survives connection loss: on a retryable failure —
//! reset, torn frame, a CRC mismatch in either direction, a
//! `STATUS_BUSY` shed — the client reconnects with its session token,
//! learns the server's `last_acked` sequence number from the hello
//! reply, and re-sends **only** the frames after it from its replay
//! buffer (the deterministic trace itself, so the buffer costs
//! nothing). Retries are bounded (`retries`) with exponential backoff
//! plus deterministic jitter derived from the slam seed, honoring any
//! `retry_after_ms=` hint the server attached to a BUSY reply.
//!
//! With `--verify`, after the slam finishes the server's `/metrics`
//! page is scraped and its global verdict histogram compared against an
//! offline replay of the exact same sessions through the same
//! [`SessionCore`] — the counts must match **bit for bit**, proving the
//! service path is the replay path *even across faults*: a chaos soak
//! that loses or duplicates a single frame's worth of verdicts fails
//! this check. The scrape can be pointed at a separate `metrics`
//! endpoint so verification bypasses a chaos proxy sitting on the data
//! path.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use trace_synth::{profiles, Instr, Program};

use crate::protocol::{
    decode_summary, encode_frame, encode_hello, encode_records_payload, parse_frame_header,
    parse_retry_after_ms, verify_frame_crc, FrameType, SessionStatsWire, FRAME_HEADER_BYTES, MAGIC,
    STATUS_BUSY, STATUS_OK, VERSION,
};
use crate::server::{Conn, Endpoint};
use crate::session::SessionCore;

/// How long a slam client waits on a single read before giving up.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Backoff is capped here no matter the attempt count.
const MAX_BACKOFF: Duration = Duration::from_secs(5);

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct SlamOptions {
    /// Server endpoint.
    pub endpoint: Endpoint,
    /// Concurrent sessions to run.
    pub sessions: usize,
    /// Trace records per session.
    pub records: u64,
    /// Records per `Records` frame.
    pub frame_records: usize,
    /// Filter preset label sent in each hello.
    pub config: String,
    /// Base seed; session `k` derives its profile and trace from it.
    pub seed: u64,
    /// Outstanding unacknowledged frames per session (pipelining).
    pub window: usize,
    /// Reconnect attempts per session after a retryable failure.
    pub retries: u32,
    /// Base backoff between attempts; doubles per attempt, jittered.
    pub backoff_ms: u64,
    /// Scrape `/metrics` afterwards and compare with an offline replay.
    pub verify: bool,
    /// Scrape endpoint for `--verify`; defaults to `endpoint`. Point it
    /// at the server directly when the data path runs through `jsn
    /// chaos`.
    pub metrics: Option<Endpoint>,
}

impl Default for SlamOptions {
    fn default() -> Self {
        SlamOptions {
            endpoint: Endpoint::Tcp("127.0.0.1:7227".to_string()),
            sessions: 32,
            records: 50_000,
            frame_records: 1024,
            config: "HMNM4".to_string(),
            seed: 42,
            window: 4,
            retries: 5,
            backoff_ms: 50,
            verify: false,
            metrics: None,
        }
    }
}

/// Outcome of a verification pass.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Per-structure/per-verdict mismatches, empty on success.
    pub mismatches: Vec<String>,
    /// Counters compared.
    pub compared: usize,
}

/// Aggregate slam results.
#[derive(Debug, Clone, Default)]
pub struct SlamReport {
    /// Sessions that ran to a clean `Stats` frame.
    pub sessions_ok: u64,
    /// Sessions that errored (with the first few reasons).
    pub sessions_failed: u64,
    /// First few failure descriptions.
    pub failures: Vec<String>,
    /// `Records` frames sent across all sessions (re-sends included).
    pub frames_sent: u64,
    /// Distinct frames confirmed applied — by a summary, or by the
    /// server's resume watermark when the summary itself was lost to a
    /// disconnect.
    pub frames_acked: u64,
    /// Trace records streamed (first sends only).
    pub records_sent: u64,
    /// Cache accesses acknowledged by the server.
    pub accesses_acked: u64,
    /// Reconnect attempts made after retryable failures.
    pub retries: u64,
    /// Successful session resumes (reconnect accepted with a token).
    pub resumes: u64,
    /// Frames re-sent during resume replays.
    pub frames_resent: u64,
    /// Wall-clock duration of the slam.
    pub elapsed: Duration,
    /// Median per-frame round trip (µs).
    pub p50_us: u64,
    /// 99th-percentile per-frame round trip (µs).
    pub p99_us: u64,
    /// Completed sessions per wall-clock second.
    pub sessions_per_sec: f64,
    /// Verification outcome, when requested.
    pub verify: Option<VerifyReport>,
}

impl SlamReport {
    /// Distinct frames sent but never confirmed applied. Re-sends of
    /// the same frame during resume replays count once: `frames_sent -
    /// frames_resent` is the number of first transmissions, and each
    /// is acked exactly once (by summary or resume watermark).
    pub fn dropped_frames(&self) -> u64 {
        self.frames_sent.saturating_sub(self.frames_resent).saturating_sub(self.frames_acked)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The deterministic trace for slam session `k`: one of the 20
/// synthetic SPEC2000-like profiles, reseeded per session.
pub fn session_instrs(base_seed: u64, k: usize, records: u64) -> Vec<Instr> {
    let all = profiles::all();
    let pick = (splitmix64(base_seed.wrapping_add(k as u64)) % all.len() as u64) as usize;
    let mut profile = all.into_iter().nth(pick).unwrap();
    profile.seed = splitmix64(base_seed ^ (k as u64).wrapping_mul(0x5851_F42D_4C95_7F2D));
    Program::new(profile).take(records as usize).collect()
}

fn connect(endpoint: &Endpoint) -> Result<Conn, String> {
    let conn = match endpoint {
        Endpoint::Tcp(addr) => Conn::Tcp(
            std::net::TcpStream::connect(addr.as_str())
                .map_err(|e| format!("connect {addr}: {e}"))?,
        ),
        Endpoint::Unix(path) => Conn::Unix(
            std::os::unix::net::UnixStream::connect(path)
                .map_err(|e| format!("connect {}: {e}", path.display()))?,
        ),
    };
    conn.set_timeouts(CLIENT_READ_TIMEOUT).map_err(|e| e.to_string())?;
    Ok(conn)
}

/// A client-side failure, tagged with whether reconnect-and-resume can
/// fix it.
#[derive(Debug)]
struct ClientError {
    msg: String,
    retryable: bool,
    /// Server-suggested wait before the next attempt (BUSY replies).
    retry_after_ms: Option<u64>,
}

impl ClientError {
    fn fatal(msg: impl Into<String>) -> ClientError {
        ClientError { msg: msg.into(), retryable: false, retry_after_ms: None }
    }

    fn retryable(msg: impl Into<String>) -> ClientError {
        ClientError { msg: msg.into(), retryable: true, retry_after_ms: None }
    }
}

fn read_exact_client(conn: &mut Conn, buf: &mut [u8]) -> Result<(), ClientError> {
    // Any socket-level read failure is wire trouble: reconnectable.
    conn.read_exact(buf).map_err(|e| ClientError::retryable(format!("read: {e}")))
}

/// Read the server's hello reply; `Ok` carries `(token, last_acked)`.
///
/// Every failure here is retryable: a rejected or garbled hello means
/// the server created **no** session state (slots and state are only
/// committed after an OK reply goes out), so reconnecting and saying
/// hello again can never double-apply anything — and on a chaotic wire
/// a "rejection" is as likely a corrupted hello as a real refusal. A
/// genuinely fatal condition (bad preset, version mismatch) simply
/// keeps failing until the retry budget runs out, with the server's
/// reason in the final error.
fn read_hello_reply(conn: &mut Conn) -> Result<(u64, u64), ClientError> {
    let mut fixed = [0u8; 7];
    read_exact_client(conn, &mut fixed)?;
    if fixed[..4] != MAGIC {
        return Err(ClientError::retryable(format!(
            "hello reply has bad magic {:02x?}",
            &fixed[..4]
        )));
    }
    let version = u16::from_le_bytes([fixed[4], fixed[5]]);
    let status = fixed[6];
    let mut len = [0u8; 2];
    read_exact_client(conn, &mut len)?;
    let mut detail = vec![0u8; u16::from_le_bytes(len) as usize];
    read_exact_client(conn, &mut detail)?;
    let detail = String::from_utf8_lossy(&detail).into_owned();
    if version != VERSION {
        // The reply prefix is version-invariant, so this decodes
        // cleanly into a named mismatch instead of shearing.
        return Err(ClientError::retryable(format!(
            "server speaks protocol v{version}, this client speaks v{VERSION}: {detail}"
        )));
    }
    match status {
        STATUS_OK => {
            // The OK trailer carries the rewind point; verify its CRC
            // before trusting it — resuming from a corrupted
            // `last_acked` would silently skip or replay frames.
            let mut trailer = [0u8; 20];
            read_exact_client(conn, &mut trailer)?;
            let mut whole = Vec::with_capacity(25);
            whole.extend_from_slice(&fixed);
            whole.extend_from_slice(&len);
            whole.extend_from_slice(&trailer[..16]);
            let wire_crc = u32::from_le_bytes(trailer[16..].try_into().unwrap());
            if trace_synth::crc32(&whole) != wire_crc {
                return Err(ClientError::retryable("hello reply failed its crc".to_string()));
            }
            let token = u64::from_le_bytes(trailer[..8].try_into().unwrap());
            let last_acked = u64::from_le_bytes(trailer[8..16].try_into().unwrap());
            Ok((token, last_acked))
        }
        STATUS_BUSY => Err(ClientError {
            msg: format!("server busy: {detail}"),
            retryable: true,
            retry_after_ms: parse_retry_after_ms(&detail),
        }),
        _ => Err(ClientError::retryable(format!("session refused (status {status}): {detail}"))),
    }
}

/// Read one server frame, verifying its CRC — a corrupted
/// server-to-client frame must trigger reconnect, not a garbage decode.
fn read_server_frame(conn: &mut Conn) -> Result<(FrameType, Vec<u8>), ClientError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    read_exact_client(conn, &mut header)?;
    let parsed =
        parse_frame_header(&header, u32::MAX).map_err(|e| ClientError::retryable(e.to_string()))?;
    let mut payload = vec![0u8; parsed.payload_len as usize];
    read_exact_client(conn, &mut payload)?;
    verify_frame_crc(&parsed, &payload).map_err(|e| ClientError::retryable(e.to_string()))?;
    Ok((parsed.frame_type, payload))
}

#[derive(Default)]
struct SessionResult {
    frames_sent: u64,
    frames_acked: u64,
    records_sent: u64,
    accesses_acked: u64,
    retries: u64,
    resumes: u64,
    frames_resent: u64,
    latencies_us: Vec<u64>,
    error: Option<String>,
}

/// Persistent client-side session state across connection attempts.
struct ClientSession<'a> {
    chunks: Vec<&'a [Instr]>,
    config: &'a str,
    window: usize,
    /// Server-issued session token (0 until the first accepted hello).
    token: u64,
    /// Highest sequence number the server has acknowledged.
    acked: u64,
    /// Highest sequence number ever sent (for re-send accounting).
    max_sent: u64,
}

/// One connection attempt: hello (possibly resuming), stream every
/// unacked frame, finish, validate stats.
fn run_attempt(
    sess: &mut ClientSession<'_>,
    endpoint: &Endpoint,
    result: &mut SessionResult,
) -> Result<(), ClientError> {
    let mut conn = connect(endpoint).map_err(ClientError::retryable)?;
    let resuming = sess.token != 0;
    conn.write_all(&encode_hello(sess.config, sess.token))
        .map_err(|e| ClientError::retryable(format!("hello: {e}")))?;
    let (token, last_acked) = read_hello_reply(&mut conn)?;
    sess.token = token;
    // The server's ack watermark is authoritative: anything at or below
    // it was applied exactly once; everything after must be (re)sent.
    // A watermark ahead of what we saw acked means those summaries were
    // lost to the disconnect — credit them now, or they would read as
    // dropped frames.
    if last_acked > sess.acked {
        result.frames_acked += last_acked - sess.acked;
    }
    sess.acked = last_acked;
    if resuming {
        result.resumes += 1;
    }

    let total = sess.chunks.len() as u64;
    let window = sess.window.max(1);
    let mut in_flight: std::collections::VecDeque<(u64, Instant)> =
        std::collections::VecDeque::new();
    let mut payload = Vec::new();
    let mut frame = Vec::new();

    let ack = |conn: &mut Conn,
               sess: &mut ClientSession<'_>,
               in_flight: &mut std::collections::VecDeque<(u64, Instant)>,
               result: &mut SessionResult|
     -> Result<(), ClientError> {
        loop {
            let (frame_type, payload) = read_server_frame(conn)?;
            match frame_type {
                FrameType::Summary => {
                    let (seq, vals) =
                        decode_summary(&payload).map_err(|e| ClientError::fatal(e.to_string()))?;
                    // A duplicated Records frame on a chaotic wire
                    // earns two summaries; anything at or below the
                    // ack watermark is the stale echo — skip it.
                    if seq <= sess.acked {
                        continue;
                    }
                    let Some((want, t0)) = in_flight.pop_front() else {
                        return Err(ClientError::fatal(format!(
                            "unsolicited summary for seq {seq}"
                        )));
                    };
                    if seq != want {
                        return Err(ClientError::fatal(format!(
                            "summary for seq {seq}, expected {want}"
                        )));
                    }
                    sess.acked = seq;
                    result.accesses_acked += vals[0];
                    result.frames_acked += 1;
                    result.latencies_us.push(t0.elapsed().as_micros() as u64);
                    return Ok(());
                }
                FrameType::Error => {
                    // The server names its reason; whether a resume
                    // can help is decided by the reconnect hello (a
                    // parked session resumes, an evicted or failed one
                    // is rejected), so classify optimistically here.
                    return Err(ClientError::retryable(format!(
                        "server error: {}",
                        String::from_utf8_lossy(&payload)
                    )));
                }
                other => {
                    return Err(ClientError::fatal(format!(
                        "unexpected {other:?} frame while awaiting a summary"
                    )));
                }
            }
        }
    };

    for seq in (sess.acked + 1)..=total {
        let chunk = sess.chunks[(seq - 1) as usize];
        payload.clear();
        encode_records_payload(seq, chunk, &mut payload);
        frame.clear();
        encode_frame(FrameType::Records, &payload, &mut frame);
        conn.write_all(&frame).map_err(|e| ClientError::retryable(format!("send frame: {e}")))?;
        result.frames_sent += 1;
        if seq <= sess.max_sent {
            result.frames_resent += 1;
        } else {
            sess.max_sent = seq;
            result.records_sent += chunk.len() as u64;
        }
        in_flight.push_back((seq, Instant::now()));
        while in_flight.len() >= window {
            ack(&mut conn, sess, &mut in_flight, result)?;
        }
    }
    while !in_flight.is_empty() {
        ack(&mut conn, sess, &mut in_flight, result)?;
    }

    frame.clear();
    encode_frame(FrameType::Finish, &[], &mut frame);
    conn.write_all(&frame).map_err(|e| ClientError::retryable(format!("send finish: {e}")))?;
    loop {
        let (frame_type, stats_payload) = read_server_frame(&mut conn)?;
        match frame_type {
            FrameType::Summary => {
                // A stale duplicate summary straggling in before the
                // stats frame; ignore it.
                continue;
            }
            FrameType::Stats => {
                let stats = SessionStatsWire::decode(&stats_payload)
                    .map_err(|e| ClientError::fatal(e.to_string()))?;
                if stats.frames != total {
                    return Err(ClientError::fatal(format!(
                        "server applied {} frames, session has {total}",
                        stats.frames
                    )));
                }
                // Summaries that covered resumed frames are advisory;
                // the final stats frame is the authoritative access
                // count.
                result.accesses_acked = stats.accesses;
                return Ok(());
            }
            FrameType::Error => {
                return Err(ClientError::retryable(format!(
                    "server error at finish: {}",
                    String::from_utf8_lossy(&stats_payload)
                )));
            }
            other => {
                return Err(ClientError::fatal(format!("unexpected {other:?} frame at finish")));
            }
        }
    }
}

/// Exponential backoff with deterministic jitter: attempt `a` waits
/// `backoff_ms × 2^a` plus up to half that again, seeded so reruns
/// reproduce the exact schedule.
fn backoff_delay(backoff_ms: u64, attempt: u32, jitter_seed: u64) -> Duration {
    let base = backoff_ms.max(1).saturating_mul(1u64 << attempt.min(16));
    let jitter = splitmix64(jitter_seed ^ u64::from(attempt)) % (base / 2 + 1);
    Duration::from_millis(base + jitter).min(MAX_BACKOFF)
}

/// Run one client session end to end: stream `instrs` in frames with a
/// pipelining window, reconnecting and resuming across retryable
/// failures, finishing with a validated `Stats` frame.
#[allow(clippy::too_many_arguments)]
fn run_client_session(
    endpoint: &Endpoint,
    config: &str,
    instrs: &[Instr],
    frame_records: usize,
    window: usize,
    retries: u32,
    backoff_ms: u64,
    jitter_seed: u64,
) -> SessionResult {
    let mut result = SessionResult::default();
    let mut sess = ClientSession {
        chunks: instrs.chunks(frame_records.max(1)).collect(),
        config,
        window,
        token: 0,
        acked: 0,
        max_sent: 0,
    };
    let mut attempt = 0u32;
    loop {
        match run_attempt(&mut sess, endpoint, &mut result) {
            Ok(()) => break,
            Err(e) if e.retryable && attempt < retries => {
                result.retries += 1;
                let delay = e
                    .retry_after_ms
                    .map(Duration::from_millis)
                    .unwrap_or_else(|| backoff_delay(backoff_ms, attempt, jitter_seed));
                std::thread::sleep(delay);
                attempt += 1;
            }
            Err(e) => {
                result.error = Some(if e.retryable {
                    format!("{} (after {} retries)", e.msg, result.retries)
                } else {
                    e.msg
                });
                break;
            }
        }
    }
    result
}

/// Scrape the server's `/metrics` page; returns the body.
pub fn scrape_metrics(endpoint: &Endpoint) -> Result<String, String> {
    let mut conn = connect(endpoint)?;
    conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").map_err(|e| format!("scrape: {e}"))?;
    let mut response = String::new();
    conn.read_to_string(&mut response).map_err(|e| format!("scrape read: {e}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .ok_or_else(|| "scrape response has no body".to_string())?;
    if !response.starts_with("HTTP/1.0 200") {
        return Err(format!("scrape failed: {}", response.lines().next().unwrap_or("")));
    }
    Ok(body)
}

/// Parse all `jsn_verdict_total` counters out of a metrics page into
/// `(structure, verdict) → count`.
pub fn parse_verdicts(page: &str) -> BTreeMap<(String, String), u64> {
    let mut out = BTreeMap::new();
    for line in page.lines() {
        let Some(rest) = line.strip_prefix("jsn_verdict_total{") else { continue };
        let Some((labels, value)) = rest.split_once("} ") else { continue };
        let mut structure = None;
        let mut verdict = None;
        for part in labels.split(',') {
            if let Some(v) = part.strip_prefix("structure=\"") {
                structure = Some(v.trim_end_matches('"').to_string());
            } else if let Some(v) = part.strip_prefix("verdict=\"") {
                verdict = Some(v.trim_end_matches('"').to_string());
            }
        }
        if let (Some(s), Some(v), Ok(n)) = (structure, verdict, value.trim().parse::<u64>()) {
            out.insert((s, v), n);
        }
    }
    out
}

/// Replay the slam's sessions offline and return the expected global
/// verdict histogram, `(structure, verdict) → count`.
pub fn offline_verdicts(opts: &SlamOptions) -> Result<BTreeMap<(String, String), u64>, String> {
    let mut expected: BTreeMap<(String, String), u64> = BTreeMap::new();
    for k in 0..opts.sessions {
        let mut core = SessionCore::new(&opts.config)?;
        let instrs = session_instrs(opts.seed, k, opts.records);
        for chunk in instrs.chunks(opts.frame_records.max(1)) {
            core.feed(chunk);
        }
        for v in core.verdicts() {
            *expected.entry((v.name.clone(), "hit".to_string())).or_default() += v.hits;
            *expected.entry((v.name.clone(), "maybe_miss".to_string())).or_default() +=
                v.maybe_misses;
            *expected.entry((v.name.clone(), "definite_miss".to_string())).or_default() +=
                v.definite_misses;
        }
    }
    Ok(expected)
}

/// Compare a scraped page against the offline replay.
pub fn verify_against_offline(opts: &SlamOptions, page: &str) -> VerifyReport {
    let scraped = parse_verdicts(page);
    let expected = match offline_verdicts(opts) {
        Ok(e) => e,
        Err(e) => {
            return VerifyReport {
                mismatches: vec![format!("offline replay failed: {e}")],
                compared: 0,
            };
        }
    };
    let mut report = VerifyReport::default();
    for (key, want) in &expected {
        let got = scraped.get(key).copied().unwrap_or(0);
        report.compared += 1;
        if got != *want {
            report.mismatches.push(format!(
                "{}/{}: server counted {got}, offline replay expects {want}",
                key.0, key.1
            ));
        }
    }
    report
}

/// Run the load generator.
pub fn run_slam(opts: &SlamOptions) -> Result<SlamReport, String> {
    if opts.sessions == 0 {
        return Err("need at least one session".to_string());
    }
    let started = Instant::now();
    let all_latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let results: Mutex<Vec<SessionResult>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for k in 0..opts.sessions {
            let all_latencies = &all_latencies;
            let results = &results;
            let opts = &*opts;
            scope.spawn(move || {
                let instrs = session_instrs(opts.seed, k, opts.records);
                let mut r = run_client_session(
                    &opts.endpoint,
                    &opts.config,
                    &instrs,
                    opts.frame_records,
                    opts.window,
                    opts.retries,
                    opts.backoff_ms,
                    splitmix64(opts.seed).wrapping_add(k as u64),
                );
                all_latencies
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .append(&mut r.latencies_us);
                results.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(r);
            });
        }
    });

    let elapsed = started.elapsed();
    let mut latencies =
        all_latencies.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    latencies.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((p * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    };

    let mut report = SlamReport {
        elapsed,
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
        ..SlamReport::default()
    };
    for r in results.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner) {
        report.frames_sent += r.frames_sent;
        report.frames_acked += r.frames_acked;
        report.records_sent += r.records_sent;
        report.accesses_acked += r.accesses_acked;
        report.retries += r.retries;
        report.resumes += r.resumes;
        report.frames_resent += r.frames_resent;
        match r.error {
            None => report.sessions_ok += 1,
            Some(e) => {
                report.sessions_failed += 1;
                if report.failures.len() < 5 {
                    report.failures.push(e);
                }
            }
        }
    }
    report.sessions_per_sec = report.sessions_ok as f64 / elapsed.as_secs_f64().max(1e-9);

    if opts.verify {
        let scrape_endpoint = opts.metrics.as_ref().unwrap_or(&opts.endpoint);
        let page = scrape_metrics(scrape_endpoint)?;
        report.verify = Some(verify_against_offline(opts, &page));
    }
    Ok(report)
}

/// Render a human-readable slam report.
pub fn format_report(report: &SlamReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sessions: {} ok, {} failed ({:.1} sessions/sec)",
        report.sessions_ok, report.sessions_failed, report.sessions_per_sec
    );
    let _ = writeln!(
        out,
        "frames:   {} sent, {} acked, {} dropped",
        report.frames_sent,
        report.frames_acked,
        report.dropped_frames()
    );
    let _ = writeln!(
        out,
        "records:  {} sent, {} accesses replayed",
        report.records_sent, report.accesses_acked
    );
    let _ = writeln!(
        out,
        "resume:   {} retries, {} resumes, {} frames resent",
        report.retries, report.resumes, report.frames_resent
    );
    let _ = writeln!(
        out,
        "latency:  p50 {} us, p99 {} us per frame round-trip, {:.2}s wall",
        report.p50_us,
        report.p99_us,
        report.elapsed.as_secs_f64()
    );
    for f in &report.failures {
        let _ = writeln!(out, "failure:  {f}");
    }
    match &report.verify {
        Some(v) if v.mismatches.is_empty() => {
            let _ = writeln!(
                out,
                "verify:   OK — {} verdict counters bit-identical to offline replay",
                v.compared
            );
        }
        Some(v) => {
            let _ = writeln!(
                out,
                "verify:   FAILED — {} of {} counters differ",
                v.mismatches.len(),
                v.compared
            );
            for m in &v.mismatches {
                let _ = writeln!(out, "  {m}");
            }
        }
        None => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_instrs_are_deterministic_and_distinct() {
        let a = session_instrs(42, 0, 1000);
        let b = session_instrs(42, 0, 1000);
        let c = session_instrs(42, 1, 1000);
        assert_eq!(a, b, "same seed and session must reproduce the trace");
        assert_ne!(a, c, "different sessions must differ");
        assert_eq!(a.len(), 1000);
    }

    #[test]
    fn verdict_page_parsing_round_trips() {
        let page = "jsn_verdict_total{structure=\"dl1\",level=\"1\",verdict=\"hit\"} 42\n\
                    jsn_verdict_total{structure=\"ul2\",level=\"2\",verdict=\"definite_miss\"} 7\n\
                    jsn_other 1\n";
        let v = parse_verdicts(page);
        assert_eq!(v.get(&("dl1".to_string(), "hit".to_string())), Some(&42));
        assert_eq!(v.get(&("ul2".to_string(), "definite_miss".to_string())), Some(&7));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn offline_verdicts_match_themselves() {
        let opts = SlamOptions { sessions: 2, records: 2000, ..SlamOptions::default() };
        let a = offline_verdicts(&opts).unwrap();
        let b = offline_verdicts(&opts).unwrap();
        assert_eq!(a, b);
        assert!(a.values().any(|&v| v > 0), "a 2k-record replay produces verdicts");
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let a = backoff_delay(50, 0, 7);
        let b = backoff_delay(50, 0, 7);
        assert_eq!(a, b, "same seed and attempt reproduce the delay");
        // Exponential floor: attempt 3 waits at least 8× the base.
        assert!(backoff_delay(50, 3, 7) >= Duration::from_millis(400));
        assert!(backoff_delay(50, 40, 7) <= MAX_BACKOFF);
    }
}
