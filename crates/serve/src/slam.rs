//! `jsn slam`: a load generator for `jsn serve`.
//!
//! Spawns N concurrent client sessions, each streaming a deterministic
//! synthetic-profile trace (derived from `--seed`, so any run can be
//! reproduced offline), and reports sessions/sec, per-frame round-trip
//! p50/p99 and dropped-frame counts.
//!
//! With `--verify`, after the slam finishes the server's `/metrics`
//! page is scraped and its global verdict histogram compared against an
//! offline replay of the exact same sessions through the same
//! [`SessionCore`] — the counts must match **bit for bit**, proving the
//! service path is the replay path.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use trace_synth::{encode_record, profiles, Instr, Program};

use crate::protocol::{
    decode_summary, encode_hello, parse_frame_header, FrameType, SessionStatsWire,
    FRAME_HEADER_BYTES, MAGIC, STATUS_OK,
};
use crate::server::{Conn, Endpoint};
use crate::session::SessionCore;

/// How long a slam client waits on a single read before giving up.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct SlamOptions {
    /// Server endpoint.
    pub endpoint: Endpoint,
    /// Concurrent sessions to run.
    pub sessions: usize,
    /// Trace records per session.
    pub records: u64,
    /// Records per `Records` frame.
    pub frame_records: usize,
    /// Filter preset label sent in each hello.
    pub config: String,
    /// Base seed; session `k` derives its profile and trace from it.
    pub seed: u64,
    /// Outstanding unacknowledged frames per session (pipelining).
    pub window: usize,
    /// Scrape `/metrics` afterwards and compare with an offline replay.
    pub verify: bool,
}

impl Default for SlamOptions {
    fn default() -> Self {
        SlamOptions {
            endpoint: Endpoint::Tcp("127.0.0.1:7227".to_string()),
            sessions: 32,
            records: 50_000,
            frame_records: 1024,
            config: "HMNM4".to_string(),
            seed: 42,
            window: 4,
            verify: false,
        }
    }
}

/// Outcome of a verification pass.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Per-structure/per-verdict mismatches, empty on success.
    pub mismatches: Vec<String>,
    /// Counters compared.
    pub compared: usize,
}

/// Aggregate slam results.
#[derive(Debug, Clone, Default)]
pub struct SlamReport {
    /// Sessions that ran to a clean `Stats` frame.
    pub sessions_ok: u64,
    /// Sessions that errored (with the first few reasons).
    pub sessions_failed: u64,
    /// First few failure descriptions.
    pub failures: Vec<String>,
    /// `Records` frames sent across all sessions.
    pub frames_sent: u64,
    /// Summary frames received back.
    pub frames_acked: u64,
    /// Trace records streamed.
    pub records_sent: u64,
    /// Cache accesses acknowledged by the server.
    pub accesses_acked: u64,
    /// Wall-clock duration of the slam.
    pub elapsed: Duration,
    /// Median per-frame round trip (µs).
    pub p50_us: u64,
    /// 99th-percentile per-frame round trip (µs).
    pub p99_us: u64,
    /// Completed sessions per wall-clock second.
    pub sessions_per_sec: f64,
    /// Verification outcome, when requested.
    pub verify: Option<VerifyReport>,
}

impl SlamReport {
    /// Frames sent but never acknowledged.
    pub fn dropped_frames(&self) -> u64 {
        self.frames_sent.saturating_sub(self.frames_acked)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The deterministic trace for slam session `k`: one of the 20
/// synthetic SPEC2000-like profiles, reseeded per session.
pub fn session_instrs(base_seed: u64, k: usize, records: u64) -> Vec<Instr> {
    let all = profiles::all();
    let pick = (splitmix64(base_seed.wrapping_add(k as u64)) % all.len() as u64) as usize;
    let mut profile = all.into_iter().nth(pick).unwrap();
    profile.seed = splitmix64(base_seed ^ (k as u64).wrapping_mul(0x5851_F42D_4C95_7F2D));
    Program::new(profile).take(records as usize).collect()
}

fn connect(endpoint: &Endpoint) -> Result<Conn, String> {
    let conn = match endpoint {
        Endpoint::Tcp(addr) => Conn::Tcp(
            std::net::TcpStream::connect(addr.as_str())
                .map_err(|e| format!("connect {addr}: {e}"))?,
        ),
        Endpoint::Unix(path) => Conn::Unix(
            std::os::unix::net::UnixStream::connect(path)
                .map_err(|e| format!("connect {}: {e}", path.display()))?,
        ),
    };
    conn.set_timeouts(CLIENT_READ_TIMEOUT).map_err(|e| e.to_string())?;
    Ok(conn)
}

fn read_exact_client(conn: &mut Conn, buf: &mut [u8]) -> Result<(), String> {
    conn.read_exact(buf).map_err(|e| format!("read: {e}"))
}

/// Read the server's hello reply; `Ok` carries the status detail.
fn read_hello_reply(conn: &mut Conn) -> Result<(), String> {
    let mut fixed = [0u8; 7];
    read_exact_client(conn, &mut fixed)?;
    if fixed[..4] != MAGIC {
        return Err(format!("hello reply has bad magic {:02x?}", &fixed[..4]));
    }
    let status = fixed[6];
    let mut len = [0u8; 2];
    read_exact_client(conn, &mut len)?;
    let mut detail = vec![0u8; u16::from_le_bytes(len) as usize];
    read_exact_client(conn, &mut detail)?;
    if status != STATUS_OK {
        return Err(format!(
            "session refused (status {status}): {}",
            String::from_utf8_lossy(&detail)
        ));
    }
    Ok(())
}

/// Read one server frame.
fn read_server_frame(conn: &mut Conn) -> Result<(FrameType, Vec<u8>), String> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    read_exact_client(conn, &mut header)?;
    let parsed = parse_frame_header(&header, u32::MAX).map_err(|e| e.to_string())?;
    let mut payload = vec![0u8; parsed.payload_len as usize];
    read_exact_client(conn, &mut payload)?;
    Ok((parsed.frame_type, payload))
}

struct SessionResult {
    frames_sent: u64,
    frames_acked: u64,
    records_sent: u64,
    accesses_acked: u64,
    latencies_us: Vec<u64>,
    error: Option<String>,
}

/// Run one client session: stream `instrs` in frames with a pipelining
/// window, collect per-frame round trips, finish with a `Stats` frame.
fn run_client_session(
    endpoint: &Endpoint,
    config: &str,
    instrs: &[Instr],
    frame_records: usize,
    window: usize,
) -> SessionResult {
    let mut result = SessionResult {
        frames_sent: 0,
        frames_acked: 0,
        records_sent: 0,
        accesses_acked: 0,
        latencies_us: Vec::new(),
        error: None,
    };
    let mut run = || -> Result<(), String> {
        let mut conn = connect(endpoint)?;
        conn.write_all(&encode_hello(config)).map_err(|e| format!("hello: {e}"))?;
        read_hello_reply(&mut conn)?;

        let window = window.max(1);
        let mut in_flight: std::collections::VecDeque<Instant> = std::collections::VecDeque::new();
        let mut frame =
            Vec::with_capacity(frame_records * trace_synth::RECORD_BYTES + FRAME_HEADER_BYTES);
        let ack = |conn: &mut Conn,
                   in_flight: &mut std::collections::VecDeque<Instant>,
                   result: &mut SessionResult|
         -> Result<(), String> {
            let (frame_type, payload) = read_server_frame(conn)?;
            match frame_type {
                FrameType::Summary => {
                    let vals = decode_summary(&payload).map_err(|e| e.to_string())?;
                    result.accesses_acked += vals[0];
                    result.frames_acked += 1;
                    if let Some(t0) = in_flight.pop_front() {
                        result.latencies_us.push(t0.elapsed().as_micros() as u64);
                    }
                    Ok(())
                }
                FrameType::Error => {
                    Err(format!("server error: {}", String::from_utf8_lossy(&payload)))
                }
                other => Err(format!("unexpected {other:?} frame while awaiting a summary")),
            }
        };

        for chunk in instrs.chunks(frame_records.max(1)) {
            frame.clear();
            frame.push(FrameType::Records as u8);
            frame.extend_from_slice(
                &((chunk.len() * trace_synth::RECORD_BYTES) as u32).to_le_bytes(),
            );
            for &instr in chunk {
                encode_record(instr, &mut frame);
            }
            conn.write_all(&frame).map_err(|e| format!("send frame: {e}"))?;
            in_flight.push_back(Instant::now());
            result.frames_sent += 1;
            result.records_sent += chunk.len() as u64;
            while in_flight.len() >= window {
                ack(&mut conn, &mut in_flight, &mut result)?;
            }
        }
        while !in_flight.is_empty() {
            ack(&mut conn, &mut in_flight, &mut result)?;
        }

        let mut finish = Vec::new();
        crate::protocol::encode_frame(FrameType::Finish, &[], &mut finish);
        conn.write_all(&finish).map_err(|e| format!("send finish: {e}"))?;
        let (frame_type, payload) = read_server_frame(&mut conn)?;
        match frame_type {
            FrameType::Stats => {
                let stats = SessionStatsWire::decode(&payload).map_err(|e| e.to_string())?;
                if stats.frames != result.frames_sent {
                    return Err(format!(
                        "server counted {} frames, client sent {}",
                        stats.frames, result.frames_sent
                    ));
                }
                Ok(())
            }
            FrameType::Error => {
                Err(format!("server error at finish: {}", String::from_utf8_lossy(&payload)))
            }
            other => Err(format!("unexpected {other:?} frame at finish")),
        }
    };
    result.error = run().err();
    result
}

/// Scrape the server's `/metrics` page; returns the body.
pub fn scrape_metrics(endpoint: &Endpoint) -> Result<String, String> {
    let mut conn = connect(endpoint)?;
    conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").map_err(|e| format!("scrape: {e}"))?;
    let mut response = String::new();
    conn.read_to_string(&mut response).map_err(|e| format!("scrape read: {e}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .ok_or_else(|| "scrape response has no body".to_string())?;
    if !response.starts_with("HTTP/1.0 200") {
        return Err(format!("scrape failed: {}", response.lines().next().unwrap_or("")));
    }
    Ok(body)
}

/// Parse all `jsn_verdict_total` counters out of a metrics page into
/// `(structure, verdict) → count`.
pub fn parse_verdicts(page: &str) -> BTreeMap<(String, String), u64> {
    let mut out = BTreeMap::new();
    for line in page.lines() {
        let Some(rest) = line.strip_prefix("jsn_verdict_total{") else { continue };
        let Some((labels, value)) = rest.split_once("} ") else { continue };
        let mut structure = None;
        let mut verdict = None;
        for part in labels.split(',') {
            if let Some(v) = part.strip_prefix("structure=\"") {
                structure = Some(v.trim_end_matches('"').to_string());
            } else if let Some(v) = part.strip_prefix("verdict=\"") {
                verdict = Some(v.trim_end_matches('"').to_string());
            }
        }
        if let (Some(s), Some(v), Ok(n)) = (structure, verdict, value.trim().parse::<u64>()) {
            out.insert((s, v), n);
        }
    }
    out
}

/// Replay the slam's sessions offline and return the expected global
/// verdict histogram, `(structure, verdict) → count`.
pub fn offline_verdicts(opts: &SlamOptions) -> Result<BTreeMap<(String, String), u64>, String> {
    let mut expected: BTreeMap<(String, String), u64> = BTreeMap::new();
    for k in 0..opts.sessions {
        let mut core = SessionCore::new(&opts.config)?;
        let instrs = session_instrs(opts.seed, k, opts.records);
        for chunk in instrs.chunks(opts.frame_records.max(1)) {
            core.feed(chunk);
        }
        for v in core.verdicts() {
            *expected.entry((v.name.clone(), "hit".to_string())).or_default() += v.hits;
            *expected.entry((v.name.clone(), "maybe_miss".to_string())).or_default() +=
                v.maybe_misses;
            *expected.entry((v.name.clone(), "definite_miss".to_string())).or_default() +=
                v.definite_misses;
        }
    }
    Ok(expected)
}

/// Compare a scraped page against the offline replay.
pub fn verify_against_offline(opts: &SlamOptions, page: &str) -> VerifyReport {
    let scraped = parse_verdicts(page);
    let expected = match offline_verdicts(opts) {
        Ok(e) => e,
        Err(e) => {
            return VerifyReport {
                mismatches: vec![format!("offline replay failed: {e}")],
                compared: 0,
            };
        }
    };
    let mut report = VerifyReport::default();
    for (key, want) in &expected {
        let got = scraped.get(key).copied().unwrap_or(0);
        report.compared += 1;
        if got != *want {
            report.mismatches.push(format!(
                "{}/{}: server counted {got}, offline replay expects {want}",
                key.0, key.1
            ));
        }
    }
    report
}

/// Run the load generator.
pub fn run_slam(opts: &SlamOptions) -> Result<SlamReport, String> {
    if opts.sessions == 0 {
        return Err("need at least one session".to_string());
    }
    let started = Instant::now();
    let all_latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let results: Mutex<Vec<SessionResult>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for k in 0..opts.sessions {
            let all_latencies = &all_latencies;
            let results = &results;
            let opts = &*opts;
            scope.spawn(move || {
                let instrs = session_instrs(opts.seed, k, opts.records);
                let mut r = run_client_session(
                    &opts.endpoint,
                    &opts.config,
                    &instrs,
                    opts.frame_records,
                    opts.window,
                );
                all_latencies
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .append(&mut r.latencies_us);
                results.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(r);
            });
        }
    });

    let elapsed = started.elapsed();
    let mut latencies =
        all_latencies.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    latencies.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((p * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    };

    let mut report = SlamReport {
        elapsed,
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
        ..SlamReport::default()
    };
    for r in results.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner) {
        report.frames_sent += r.frames_sent;
        report.frames_acked += r.frames_acked;
        report.records_sent += r.records_sent;
        report.accesses_acked += r.accesses_acked;
        match r.error {
            None => report.sessions_ok += 1,
            Some(e) => {
                report.sessions_failed += 1;
                if report.failures.len() < 5 {
                    report.failures.push(e);
                }
            }
        }
    }
    report.sessions_per_sec = report.sessions_ok as f64 / elapsed.as_secs_f64().max(1e-9);

    if opts.verify {
        let page = scrape_metrics(&opts.endpoint)?;
        report.verify = Some(verify_against_offline(opts, &page));
    }
    Ok(report)
}

/// Render a human-readable slam report.
pub fn format_report(report: &SlamReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sessions: {} ok, {} failed ({:.1} sessions/sec)",
        report.sessions_ok, report.sessions_failed, report.sessions_per_sec
    );
    let _ = writeln!(
        out,
        "frames:   {} sent, {} acked, {} dropped",
        report.frames_sent,
        report.frames_acked,
        report.dropped_frames()
    );
    let _ = writeln!(
        out,
        "records:  {} sent, {} accesses replayed",
        report.records_sent, report.accesses_acked
    );
    let _ = writeln!(
        out,
        "latency:  p50 {} us, p99 {} us per frame round-trip, {:.2}s wall",
        report.p50_us,
        report.p99_us,
        report.elapsed.as_secs_f64()
    );
    for f in &report.failures {
        let _ = writeln!(out, "failure:  {f}");
    }
    match &report.verify {
        Some(v) if v.mismatches.is_empty() => {
            let _ = writeln!(
                out,
                "verify:   OK — {} verdict counters bit-identical to offline replay",
                v.compared
            );
        }
        Some(v) => {
            let _ = writeln!(
                out,
                "verify:   FAILED — {} of {} counters differ",
                v.mismatches.len(),
                v.compared
            );
            for m in &v.mismatches {
                let _ = writeln!(out, "  {m}");
            }
        }
        None => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_instrs_are_deterministic_and_distinct() {
        let a = session_instrs(42, 0, 1000);
        let b = session_instrs(42, 0, 1000);
        let c = session_instrs(42, 1, 1000);
        assert_eq!(a, b, "same seed and session must reproduce the trace");
        assert_ne!(a, c, "different sessions must differ");
        assert_eq!(a.len(), 1000);
    }

    #[test]
    fn verdict_page_parsing_round_trips() {
        let page = "jsn_verdict_total{structure=\"dl1\",level=\"1\",verdict=\"hit\"} 42\n\
                    jsn_verdict_total{structure=\"ul2\",level=\"2\",verdict=\"definite_miss\"} 7\n\
                    jsn_other 1\n";
        let v = parse_verdicts(page);
        assert_eq!(v.get(&("dl1".to_string(), "hit".to_string())), Some(&42));
        assert_eq!(v.get(&("ul2".to_string(), "definite_miss".to_string())), Some(&7));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn offline_verdicts_match_themselves() {
        let opts = SlamOptions { sessions: 2, records: 2000, ..SlamOptions::default() };
        let a = offline_verdicts(&opts).unwrap();
        let b = offline_verdicts(&opts).unwrap();
        assert_eq!(a, b);
        assert!(a.values().any(|&v| v > 0), "a 2k-record replay produces verdicts");
    }
}
