//! One replay session: a private cache hierarchy plus a filter preset.
//!
//! [`SessionCore`] is the piece shared between the server and the offline
//! verifier: both feed it the same records through [`SessionCore::feed`],
//! so the verdict histogram a client scrapes from a live server is
//! bit-identical to an offline replay of the same trace — the property
//! `jsn slam --verify` checks end-to-end.
//!
//! Records are converted exactly like the functional replay path of
//! `jsn run`: loads and stores become data-side cache accesses; ops and
//! branches advance the record count but touch no cache.

use cache_sim::{
    Access, AccessFilter, BatchSummary, BypassSet, CacheEvent, Hierarchy, HierarchyConfig,
    NoFilter, ProbeRecord, ReplaySession, StructureStats,
};
use mnm_core::{FilterOccupancy, Mnm, MnmConfig, PerfectFilter};
use trace_synth::{Instr, InstrKind};

use crate::protocol::{SessionStatsWire, StructureVerdictsWire};

/// The filter presets a session can request in its hello.
pub enum SessionFilter {
    /// No filter: every probe is a normal probe.
    Baseline(NoFilter),
    /// The oracle filter (paper §4.3): bypasses exactly the true misses.
    Perfect(PerfectFilter),
    /// A Mostly No Machine built from an `MnmConfig` label.
    Mnm(Box<Mnm>),
}

impl AccessFilter for SessionFilter {
    fn query(&mut self, hierarchy: &Hierarchy, access: Access) -> BypassSet {
        match self {
            SessionFilter::Baseline(f) => f.query(hierarchy, access),
            SessionFilter::Perfect(f) => f.query(hierarchy, access),
            SessionFilter::Mnm(f) => <Mnm as AccessFilter>::query(f, hierarchy, access),
        }
    }

    fn observe_events(&mut self, hierarchy: &Hierarchy, events: &[CacheEvent]) {
        match self {
            SessionFilter::Baseline(f) => f.observe_events(hierarchy, events),
            SessionFilter::Perfect(f) => f.observe_events(hierarchy, events),
            SessionFilter::Mnm(f) => <Mnm as AccessFilter>::observe_events(f, hierarchy, events),
        }
    }

    fn note_probes(&mut self, access: Access, probes: &[ProbeRecord]) {
        match self {
            SessionFilter::Baseline(f) => f.note_probes(access, probes),
            SessionFilter::Perfect(f) => f.note_probes(access, probes),
            SessionFilter::Mnm(f) => <Mnm as AccessFilter>::note_probes(f, access, probes),
        }
    }
}

/// Parse a hello config label into a filter for `hierarchy`.
///
/// Accepts `baseline`, `perfect`, or any `MnmConfig` label
/// (`HMNM4`, `TMNM_12x1`, `BLOOM_13x4`, ...).
pub fn parse_preset(label: &str, hierarchy: &Hierarchy) -> Result<SessionFilter, String> {
    match label {
        "baseline" => Ok(SessionFilter::Baseline(NoFilter)),
        "perfect" => Ok(SessionFilter::Perfect(PerfectFilter)),
        other => {
            let config = MnmConfig::parse(other)
                .map_err(|e| format!("unknown filter preset `{other}`: {e} (try `baseline`, `perfect`, or an MNM label like `HMNM4`)"))?;
            Ok(SessionFilter::Mnm(Box::new(Mnm::new(hierarchy, config))))
        }
    }
}

/// A session's replay state: its own hierarchy, filter, and counters.
pub struct SessionCore {
    hierarchy: Hierarchy,
    filter: SessionFilter,
    /// Scratch buffer of converted accesses, reused across frames.
    batch: Vec<Access>,
    /// Trace records seen (including non-memory records).
    records: u64,
    /// `Records` frames fed.
    frames: u64,
    /// Cache accesses replayed.
    accesses: u64,
    /// Total latency across all accesses, in cycles.
    total_latency: u64,
}

impl SessionCore {
    /// Build a session for `preset` on the paper's five-level hierarchy.
    pub fn new(preset: &str) -> Result<SessionCore, String> {
        SessionCore::with_config(preset, HierarchyConfig::paper_five_level())
    }

    /// Build a session on a specific hierarchy configuration.
    pub fn with_config(preset: &str, config: HierarchyConfig) -> Result<SessionCore, String> {
        let hierarchy = Hierarchy::new(config);
        let filter = parse_preset(preset, &hierarchy)?;
        Ok(SessionCore {
            hierarchy,
            filter,
            batch: Vec::new(),
            records: 0,
            frames: 0,
            accesses: 0,
            total_latency: 0,
        })
    }

    /// Replay one frame of records. Loads/stores become data accesses;
    /// other record kinds only advance the record count.
    pub fn feed(&mut self, instrs: &[Instr]) -> BatchSummary {
        self.batch.clear();
        for instr in instrs {
            match instr.kind {
                InstrKind::Load { addr } => self.batch.push(Access::load(addr)),
                InstrKind::Store { addr } => self.batch.push(Access::store(addr)),
                InstrKind::Op { .. } | InstrKind::Branch { .. } => {}
            }
        }
        self.records += instrs.len() as u64;
        self.frames += 1;
        let summary =
            ReplaySession::new(&mut self.hierarchy, &mut self.filter).process_many(&self.batch);
        self.accesses += summary.accesses;
        self.total_latency += summary.total_latency;
        summary
    }

    /// Cumulative per-structure stats (the verdict histogram source).
    pub fn structure_stats(&self) -> &[StructureStats] {
        &self.hierarchy.stats().structures
    }

    /// A snapshot of per-structure verdict counts with names and levels.
    pub fn verdicts(&self) -> Vec<StructureVerdictsWire> {
        self.hierarchy
            .structures()
            .iter()
            .zip(&self.hierarchy.stats().structures)
            .map(|(info, stats)| StructureVerdictsWire {
                name: info.name.clone(),
                level: info.level,
                hits: stats.hits,
                maybe_misses: stats.misses,
                definite_misses: stats.bypasses,
            })
            .collect()
    }

    /// The filter's dynamic occupancy (zero for baseline/perfect, which
    /// track no state).
    pub fn occupancy(&self) -> FilterOccupancy {
        match &self.filter {
            SessionFilter::Baseline(_) | SessionFilter::Perfect(_) => FilterOccupancy::default(),
            SessionFilter::Mnm(m) => m.occupancy(),
        }
    }

    /// Final session stats in wire form.
    pub fn stats_wire(&self) -> SessionStatsWire {
        let occ = self.occupancy();
        SessionStatsWire {
            accesses: self.accesses,
            records: self.records,
            frames: self.frames,
            total_latency: self.total_latency,
            occupancy_tracked: occ.tracked,
            occupancy_capacity: occ.capacity,
            structures: self.verdicts(),
        }
    }

    /// Cache accesses replayed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Trace records seen so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_synth::{profiles, Program};

    fn sample_instrs(n: usize) -> Vec<Instr> {
        let profile = profiles::by_name("181.mcf").unwrap();
        Program::new(profile).take(n).collect()
    }

    #[test]
    fn presets_parse_and_unknown_is_an_error() {
        assert!(SessionCore::new("baseline").is_ok());
        assert!(SessionCore::new("perfect").is_ok());
        assert!(SessionCore::new("HMNM4").is_ok());
        assert!(SessionCore::new("TMNM_12x1").is_ok());
        let err = SessionCore::new("no-such-filter").map(|_| ()).unwrap_err();
        assert!(err.contains("no-such-filter"), "error names the bad label: {err}");
    }

    #[test]
    fn feed_matches_monolithic_replay_regardless_of_chunking() {
        let instrs = sample_instrs(20_000);

        // One big frame.
        let mut whole = SessionCore::new("HMNM4").unwrap();
        whole.feed(&instrs);

        // Many uneven frames.
        let mut chunked = SessionCore::new("HMNM4").unwrap();
        let mut rest = &instrs[..];
        let mut step = 1usize;
        while !rest.is_empty() {
            let k = step.min(rest.len());
            chunked.feed(&rest[..k]);
            rest = &rest[k..];
            step = step * 2 + 1;
        }

        assert_eq!(whole.accesses(), chunked.accesses());
        assert_eq!(whole.verdicts(), chunked.verdicts());
        assert_eq!(whole.stats_wire().total_latency, chunked.stats_wire().total_latency);
    }

    #[test]
    fn verdict_counts_add_up_to_probe_totals() {
        let mut core = SessionCore::new("HMNM4").unwrap();
        core.feed(&sample_instrs(50_000));
        for v in core.verdicts() {
            // Every data-side probe lands in exactly one bucket; the
            // hierarchy's own accounting must agree.
            assert!(
                v.hits + v.maybe_misses > 0 || v.definite_misses > 0 || v.name.starts_with("il"),
                "{v:?}"
            );
        }
        let occ = core.occupancy();
        assert!(occ.capacity > 0);
        assert!(occ.tracked > 0, "a warm HMNM tracks state");
    }
}
