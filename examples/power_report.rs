//! Energy accounting with a serial MNM (the paper's Figure 16 protocol on
//! one application): per-structure cache energy, the miss-probe share the
//! MNM eliminates, and the MNM's own cost.
//!
//! Run with: `cargo run --release --example power_report`

use just_say_no::prelude::*;

fn drive(hier: &mut Hierarchy, mnm: Option<&mut Mnm>, n: usize) {
    let profile = profiles::by_name("300.twolf").expect("bundled profile");
    let mut mnm = mnm;
    for instr in Program::new(profile).take(n) {
        if let Some(addr) = instr.data_addr() {
            let access = if matches!(instr.kind, InstrKind::Store { .. }) {
                Access::store(addr)
            } else {
                Access::load(addr)
            };
            match &mut mnm {
                Some(m) => {
                    m.run_access(hier, access);
                }
                None => {
                    hier.access(access, &BypassSet::none());
                }
            }
        }
    }
}

fn main() {
    const N: usize = 400_000;
    let model = EnergyModel::default();

    // Baseline energy.
    let mut plain = Hierarchy::new(HierarchyConfig::paper_five_level());
    drive(&mut plain, None, N);
    let base = account_hierarchy(&plain, &model);

    // Serial HMNM2: queried only after L1 misses.
    let mut guarded = Hierarchy::new(HierarchyConfig::paper_five_level());
    let mut mnm = Mnm::new(&guarded, MnmConfig::hmnm(2).with_placement(MnmPlacement::Serial));
    drive(&mut guarded, Some(&mut mnm), N);
    let with_mnm = account_hierarchy(&guarded, &model);
    let l1_misses: u64 = guarded
        .structures()
        .iter()
        .filter(|s| s.level == 1)
        .map(|s| guarded.stats().structures[s.id.index()].misses)
        .sum();
    let mnm_energy = mnm_total_energy(&mnm, &model, l1_misses);

    println!("300.twolf-like workload, {N} instructions, serial HMNM2\n");
    println!("{:<8}{:>14}{:>16}{:>14}", "cache", "probe [nJ]", "miss share [%]", "fills [nJ]");
    for s in &base.structures {
        let miss_pct = if s.probe_nj > 0.0 { 100.0 * s.miss_probe_nj / s.probe_nj } else { 0.0 };
        println!("{:<8}{:>14.1}{:>16.1}{:>14.1}", s.name, s.probe_nj, miss_pct, s.fill_nj);
    }
    println!();
    println!("baseline cache energy:        {:>12.1} nJ", base.total_nj());
    println!(
        "  of which wasted on misses:  {:>12.1} nJ ({:.1}%)",
        base.miss_probe_nj(),
        100.0 * base.miss_fraction()
    );
    println!("with serial HMNM2:            {:>12.1} nJ (caches)", with_mnm.total_nj());
    println!(
        "  + MNM itself:               {:>12.1} nJ ({} queries after L1 misses)",
        mnm_energy.total_nj(),
        l1_misses
    );
    let total = with_mnm.total_nj() + mnm_energy.total_nj();
    println!(
        "net reduction:                {:>11.1}%",
        100.0 * (base.total_nj() - total) / base.total_nj()
    );
}
