//! Quickstart: attach the paper's best hybrid MNM (HMNM4) to the paper's
//! 5-level hierarchy, run a synthetic SPEC2000-like workload, and report
//! coverage and the mean data-access-time win.
//!
//! Run with: `cargo run --release --example quickstart`

use just_say_no::prelude::*;

fn main() {
    // The paper's simulated processor (Section 4.1): 4KB split L1s, 16KB
    // split L2s, unified 128KB/512KB/2MB L3-L5, 320-cycle memory.
    let config = HierarchyConfig::paper_five_level();

    // Two identical hierarchies: one plain, one guarded by an MNM.
    let mut plain = Hierarchy::new(config.clone());
    let mut guarded = Hierarchy::new(config);
    let mut mnm = Mnm::new(&guarded, MnmConfig::hmnm(4));

    // A gzip-like instruction stream; we drive its loads and stores.
    let profile = profiles::by_name("164.gzip").expect("bundled profile");
    println!("workload: {} ({} bytes of data touched)", profile.name, profile.data_footprint());

    let program = Program::new(profile);
    for instr in program.take(400_000) {
        if let Some(addr) = instr.data_addr() {
            let access = if matches!(instr.kind, InstrKind::Store { .. }) {
                Access::store(addr)
            } else {
                Access::load(addr)
            };
            plain.access(access, &BypassSet::none());
            mnm.run_access(&mut guarded, access);
        }
    }

    let cov = mnm.stats().coverage() * 100.0;
    let t_plain = plain.stats().mean_access_time();
    let t_mnm = guarded.stats().mean_access_time();
    println!("bypassable misses identified (coverage): {cov:.1}%");
    println!("mean data access time without MNM: {t_plain:.2} cycles");
    println!("mean data access time with HMNM4:  {t_mnm:.2} cycles");
    println!("reduction: {:.1}%", 100.0 * (t_plain - t_mnm) / t_plain);

    // The MNM's verdicts are sound by construction: every bypass was
    // checked against actual cache contents in debug builds.
    println!(
        "MNM hardware: {} bits of state across {} components",
        mnm.storage_bits(),
        mnm.storage().len()
    );
}
