//! Using the library outside the paper's configuration: a custom 3-level
//! embedded-style hierarchy, a hand-picked per-level technique mix, and the
//! analytic model (paper Equations 1–2) cross-checked against simulation.
//!
//! Run with: `cargo run --release --example custom_hierarchy`

use just_say_no::prelude::*;
use mnm_core::{Assignment, CmnmConfig, TechniqueConfig, TmnmConfig};
use mnm_experiments::analytic::{eq2_access_time, LevelModel};

fn main() {
    // A small embedded-style hierarchy: 8KB split L1, 64KB unified L2,
    // 1MB unified L3, slow flash-like backing store.
    let config = HierarchyConfig {
        levels: vec![
            LevelConfig::Split {
                instr: CacheConfig::new("il1", 8 * 1024, 2, 32, 1),
                data: CacheConfig::new("dl1", 8 * 1024, 2, 32, 1),
            },
            LevelConfig::Unified(CacheConfig::new("ul2", 64 * 1024, 4, 64, 6)),
            LevelConfig::Unified(CacheConfig::new("ul3", 1024 * 1024, 8, 128, 24)),
        ],
        memory_latency: 500,
        inclusive: false,
    };

    // A custom technique mix: cheap counter tables on L2, a common-address
    // filter on the big L3.
    let mnm_config = MnmConfig {
        name: "custom".to_owned(),
        assignments: vec![
            Assignment {
                levels: 2..=2,
                techniques: vec![TechniqueConfig::Tmnm(TmnmConfig::new(11, 2))],
            },
            Assignment {
                levels: 3..=3,
                techniques: vec![TechniqueConfig::Cmnm(CmnmConfig::new(4, 11))],
            },
        ],
        rmnm: Some(mnm_core::RmnmConfig::new(256, 2)),
        delay: 1,
        placement: MnmPlacement::Parallel,
    };

    let mut hier = Hierarchy::new(config.clone());
    let mut mnm = Mnm::new(&hier, mnm_config);

    // An equake-like mixed workload.
    let profile = profiles::by_name("183.equake").expect("bundled profile");
    for instr in Program::new(profile).take(400_000) {
        if let Some(addr) = instr.data_addr() {
            mnm.run_access(&mut hier, Access::load(addr));
        }
    }

    println!("custom 3-level hierarchy + custom MNM mix");
    println!("coverage: {:.1}%", mnm.stats().coverage() * 100.0);
    println!("mean data access time: {:.2} cycles", hier.stats().mean_access_time());

    // Cross-check with the paper's Equation 2 from the measured rates.
    let levels: Vec<LevelModel> = hier
        .path(AccessKind::Load)
        .iter()
        .map(|sid| {
            let st = hier.stats().structures[sid.index()];
            let cfg = hier.cache(*sid).config();
            let refs = (st.probes + st.bypasses) as f64;
            let misses = (st.misses + st.bypasses) as f64;
            LevelModel {
                hit_time: cfg.hit_latency as f64,
                miss_time: cfg.miss_latency as f64,
                miss_rate: if refs == 0.0 { 0.0 } else { misses / refs },
                unidentified: if misses == 0.0 { 1.0 } else { st.misses as f64 / misses },
            }
        })
        .collect();
    let predicted = eq2_access_time(&levels, config.memory_latency as f64);
    println!("Equation 2 prediction:  {predicted:.2} cycles (should match)");

    for (slot, (name, level)) in mnm.guarded_structures().into_iter().enumerate() {
        let st = mnm.stats().slots[slot];
        println!(
            "  {name} (L{level}): {:.1}% of its bypassable misses identified",
            st.coverage() * 100.0
        );
    }
}
