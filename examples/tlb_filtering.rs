//! The paper's §4.5 TLB suggestion, end to end: a small counter filter in
//! front of a 512-entry L2 TLB skips lookups that are certain to miss.
//! Big-footprint workloads (mcf-like) skip most L2 TLB lookups; compact
//! workloads never miss the L1 TLB and gain nothing.
//!
//! Run with: `cargo run --release --example tlb_filtering`

use cache_sim::{TlbEvent, TwoLevelTlb};
use just_say_no::prelude::*;
use mnm_core::{MissFilter, TmnmConfig, TmnmFilter};

const N: usize = 400_000;

fn run(app: &str, filtered: bool) -> (f64, f64, u64) {
    let profile = profiles::by_name(app).expect("bundled profile");
    let mut tlb = TwoLevelTlb::typical();
    // One 4096-counter table over the low page-number bits.
    let mut filter = TmnmFilter::new(TmnmConfig::new(12, 1));
    let mut events: Vec<TlbEvent> = Vec::new();

    for instr in Program::new(profile).take(N) {
        let Some(addr) = instr.data_addr() else { continue };
        let bypass = filtered && filter.is_definite_miss(tlb.page_of(addr));
        events.clear();
        tlb.translate(addr, bypass, &mut events);
        for ev in &events {
            match *ev {
                TlbEvent::L2Placed(p) => filter.on_place(p),
                TlbEvent::L2Replaced(p) => filter.on_replace(p),
            }
        }
    }
    let (_, l2, walks) = tlb.stats();
    let skipped = l2.bypasses as f64 / (l2.probes + l2.bypasses).max(1) as f64;
    (skipped * 100.0, tlb.mean_latency(), walks)
}

fn main() {
    println!(
        "{:<12}{:>18}{:>16}{:>12}",
        "app", "L2 lookups skipped", "mean lat [cyc]", "page walks"
    );
    for app in ["164.gzip", "181.mcf", "171.swim", "179.art"] {
        let (_, base_lat, base_walks) = run(app, false);
        let (skipped, filt_lat, walks) = run(app, true);
        assert_eq!(base_walks, walks, "filtering never changes where translations come from");
        println!(
            "{:<12}{:>17.1}%{:>8.1} -> {:>4.1}{:>12}",
            app, skipped, base_lat, filt_lat, walks
        );
    }
    println!("\nOnly workloads whose page set overflows the TLBs have anything to skip —");
    println!("the filter is sound, so every skipped lookup would have missed.");
}
