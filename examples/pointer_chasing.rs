//! The paper's motivating workload class: pointer chasing over a footprint
//! far larger than every cache level (`181.mcf`-like). Every chase step
//! walks the full 5-level hierarchy; an MNM lets the request skip straight
//! to memory.
//!
//! Runs the full out-of-order core model three times — baseline, HMNM4,
//! perfect oracle — and reports execution cycles (the paper's Figure 15
//! protocol, one application).
//!
//! Run with: `cargo run --release --example pointer_chasing`

use just_say_no::prelude::*;

const INSTRUCTIONS: u64 = 300_000;

fn run(label: &str, mut policy_for: impl FnMut(&Hierarchy) -> Policy) -> u64 {
    let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let policy = policy_for(&hier);
    let profile = profiles::by_name("181.mcf").expect("bundled profile");
    let cpu = CpuConfig::paper_eight_way();
    let stats = match policy {
        Policy::Baseline => {
            simulate(&cpu, &mut hier, MemPolicy::Baseline, Program::new(profile), INSTRUCTIONS)
        }
        Policy::Hmnm(mut mnm) => {
            let s = simulate(
                &cpu,
                &mut hier,
                MemPolicy::Mnm(&mut mnm),
                Program::new(profile),
                INSTRUCTIONS,
            );
            println!("  [{label}] coverage: {:.1}%", mnm.stats().coverage() * 100.0);
            s
        }
        Policy::Perfect => {
            simulate(&cpu, &mut hier, MemPolicy::Perfect, Program::new(profile), INSTRUCTIONS)
        }
    };
    println!(
        "  [{label}] {} cycles, IPC {:.3}, mean load latency {:.1} cycles",
        stats.cycles,
        stats.ipc(),
        stats.mean_load_latency()
    );
    stats.cycles
}

#[allow(clippy::large_enum_variant)] // example-local, one instance lives on the stack
enum Policy {
    Baseline,
    Hmnm(Mnm),
    Perfect,
}

fn main() {
    println!("181.mcf-like pointer chase, {INSTRUCTIONS} instructions, 8-way OoO core\n");
    let base = run("baseline", |_| Policy::Baseline);
    let hmnm = run("HMNM4   ", |h| Policy::Hmnm(Mnm::new(h, MnmConfig::hmnm(4))));
    let perfect = run("perfect ", |_| Policy::Perfect);

    println!();
    println!("HMNM4 cycle reduction:   {:.1}%", 100.0 * (base - hmnm) as f64 / base as f64);
    println!(
        "perfect cycle reduction: {:.1}% (upper bound)",
        100.0 * (base - perfect) as f64 / base as f64
    );
}
